module E = Sim.Engine
module L = Interconnect.Layout
module F = Interconnect.Fabric
module MC = Interconnect.Msg_class

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type l1_state = M | O | Es | S

let l1_state_name = function M -> "M" | O -> "O" | Es -> "E" | S -> "S"

type l1_line = { mutable st : l1_state; mutable hold_until : Sim.Time.t }

(* Chip-level view kept by the home L2 bank, mirroring (with bounded
   staleness) the inter-CMP directory's opinion of this chip. *)
type chip_state =
  | CInv  (* chip holds nothing *)
  | CSh  (* chip holds read-only copies *)
  | COwn  (* chip owns the (possibly dirty) block, other chips share *)
  | CEx  (* chip is the exclusive holder *)

(* Local (intra-CMP) transaction at the home L2 bank. *)
type ltrans = {
  lt_kind : [ `S | `M ];
  lt_l1 : int;
  lt_home_bound : bool;  (* involves the inter-CMP directory *)
  mutable lt_await_data : bool;
  mutable lt_acks_expected : int;  (* chip-level inv acks *)
  mutable lt_acks_known : bool;
  mutable lt_acks_got : int;
  mutable lt_dirty : bool;
  mutable lt_excl : bool;
  mutable lt_origin : Msg.origin;
  mutable lt_done : bool;  (* data grant sent; awaiting only the unblock *)
}

(* External transaction (home forwarded another chip's request here). *)
type etrans = {
  et_kind : [ `S | `M ];
  et_requester_l2 : int;
  et_acks : int;  (* sharer-chip inv acks the requester must collect *)
}

type ldir = {
  mutable owner_l1 : int option;
  mutable sharers : int;  (* bitmask over local L1 index *)
  mutable chip : chip_state;
  mutable busy : bool;
  defer : (unit -> unit) Queue.t;  (* local requests *)
  defer_ext : (unit -> unit) Queue.t;  (* forwards from the home *)
  mutable tr : ltrans option;
  mutable ext : etrans option;
  mutable wb_from : int option;  (* L1 writeback being granted *)
}

type l2_line = { mutable l2_dirty : bool }

type l2_wb = { mutable wb_dirty : bool; mutable wb_stale : bool }

type mshr = {
  m_addr : Cache.Addr.t;
  m_rw : [ `R | `W ];
  m_upgrade : bool;  (* write miss on a line already present read-only *)
  m_commit : unit -> unit;
  m_issued : Sim.Time.t;
  m_tid : int;  (* transaction id for trace spans; unused by the protocol *)
  m_proc : int;
}

(* Inter-CMP directory entry at the home memory controller. *)
type cdir = {
  mutable owner : int option;  (* cmp *)
  mutable csharers : int;  (* cmp bitmask *)
  mutable cbusy : bool;
  cdefer : (unit -> unit) Queue.t;
}

type node = {
  id : int;
  kind : L.kind;
  (* L1 *)
  l1_lines : l1_line Cache.Sarray.t;
  l1_wb : (Cache.Addr.t, l1_state * int) Hashtbl.t;  (* buffered state, serial *)
  mutable wb_serial : int;
  mutable mshr : mshr option;
  (* L2 *)
  l2_data : l2_line Cache.Sarray.t;
  ldir : (Cache.Addr.t, ldir) Hashtbl.t;
  l2_wb : (Cache.Addr.t, l2_wb) Hashtbl.t;
  (* Mem *)
  cdir : (Cache.Addr.t, cdir) Hashtbl.t;
}

type t = {
  engine : E.t;
  cfg : Mcmp.Config.t;
  layout : L.t;
  fabric : Msg.t F.t;
  counters : Mcmp.Counters.t;
  nodes : node array;
  migratory : bool;
  dram_directory : bool;
  (* Free lists of recycled records, one per hot point-to-point message
     of the intra-CMP protocol (every L1 miss costs one request, one
     data grant and one unblock). Filled at delivery while the fabric
     reports {!F.exactly_once} — so a pooled record can never be
     reached by a duplicate or a retransmit buffer — and drained at the
     construction sites. Multicast [L1_inv] is shared across deliveries
     and must not be pooled. The filler below a top index is never
     popped: tops start at 0 and a release writes its slot before
     exposing it. *)
  pool_gets : Msg.t array;
  mutable pool_gets_top : int;
  pool_getm : Msg.t array;
  mutable pool_getm_top : int;
  pool_data : Msg.t array;
  mutable pool_data_top : int;
  pool_unblock : Msg.t array;
  mutable pool_unblock_top : int;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let now t = E.now t.engine

let node_cmp n =
  match n.kind with
  | L.L1d { cmp; _ } | L.L1i { cmp; _ } | L.L2 { cmp; _ } | L.Mem { cmp } -> cmp

let home_mem t addr = L.mem t.layout ~cmp:(Cache.Addr.home_cmp ~ncmp:t.cfg.Mcmp.Config.ncmp addr)

let home_l2 t ~cmp addr =
  L.l2 t.layout ~cmp ~bank:(Cache.Addr.l2_bank ~nbanks:t.cfg.Mcmp.Config.l2_banks addr)

let local_l1_bit t id =
  match L.kind t.layout id with
  | L.L1d { proc; _ } -> 1 lsl proc
  | L.L1i { proc; _ } -> 1 lsl (t.layout.L.procs_per_cmp + proc)
  | L.L2 _ | L.Mem _ -> 0

(* Sharer-bitmap bit [i] is node [first_l1 + i] (see [local_l1_bit]),
   so the bitmap lifts straight into a destination mask. *)
let l1_dstset t cmp bits =
  Interconnect.Destset.of_bitfield ~bits ~base:(L.l1d t.layout ~cmp ~proc:0)

let get_ldir node addr =
  match Hashtbl.find_opt node.ldir addr with
  | Some d -> d
  | None ->
    let d =
      {
        owner_l1 = None;
        sharers = 0;
        chip = CInv;
        busy = false;
        defer = Queue.create ();
        defer_ext = Queue.create ();
        tr = None;
        ext = None;
        wb_from = None;
      }
    in
    Hashtbl.add node.ldir addr d;
    d

let get_cdir node addr =
  match Hashtbl.find_opt node.cdir addr with
  | Some d -> d
  | None ->
    let d = { owner = None; csharers = 0; cbusy = false; cdefer = Queue.create () } in
    Hashtbl.add node.cdir addr d;
    d

(* The chip's current data copy for [addr], if any: the L2 array or a
   pending chip-level writeback buffer. *)
let l2_chip_data node addr =
  match Cache.Sarray.find node.l2_data addr with
  | Some line -> Some line.l2_dirty
  | None -> (
    match Hashtbl.find_opt node.l2_wb addr with
    | Some wb when not wb.wb_stale -> Some wb.wb_dirty
    | Some _ | None -> None)

let ctrl t = t.cfg.Mcmp.Config.ctrl_bytes
let datab t = t.cfg.Mcmp.Config.data_bytes

let send1 t ~src ~dst ~cls ~bytes msg = F.send_one t.fabric ~src ~dst ~cls ~bytes msg

(* Pool acquire: one function per pooled constructor (the free lists
   are untyped [Msg.t] slots, so each acquire re-establishes its arm). *)

let alloc_l1_gets t ~addr ~l1 =
  if t.pool_gets_top > 0 then begin
    t.pool_gets_top <- t.pool_gets_top - 1;
    let m = t.pool_gets.(t.pool_gets_top) in
    (match m with
    | Msg.L1_gets r ->
      r.addr <- addr;
      r.l1 <- l1
    | _ -> assert false);
    m
  end
  else Msg.L1_gets { addr; l1 }

let alloc_l1_getm t ~addr ~l1 =
  if t.pool_getm_top > 0 then begin
    t.pool_getm_top <- t.pool_getm_top - 1;
    let m = t.pool_getm.(t.pool_getm_top) in
    (match m with
    | Msg.L1_getm r ->
      r.addr <- addr;
      r.l1 <- l1
    | _ -> assert false);
    m
  end
  else Msg.L1_getm { addr; l1 }

let alloc_l1_data t ~addr ~excl ~dirty ~origin ~unblock =
  if t.pool_data_top > 0 then begin
    t.pool_data_top <- t.pool_data_top - 1;
    let m = t.pool_data.(t.pool_data_top) in
    (match m with
    | Msg.L1_data r ->
      r.addr <- addr;
      r.excl <- excl;
      r.dirty <- dirty;
      r.origin <- origin;
      r.unblock <- unblock
    | _ -> assert false);
    m
  end
  else Msg.L1_data { addr; excl; dirty; origin; unblock }

let alloc_l1_unblock t ~addr ~l1 =
  if t.pool_unblock_top > 0 then begin
    t.pool_unblock_top <- t.pool_unblock_top - 1;
    let m = t.pool_unblock.(t.pool_unblock_top) in
    (match m with
    | Msg.L1_unblock r ->
      r.addr <- addr;
      r.l1 <- l1
    | _ -> assert false);
    m
  end
  else Msg.L1_unblock { addr; l1 }

(* Pool release, called by the delivery handler after [handle] returns:
   [handle] fully destructures every pooled arm (the delayed
   continuations capture the destructured scalars, never the record),
   so the record is dead by then. *)
let release_msg t msg =
  if F.exactly_once t.fabric then
    match msg with
    | Msg.L1_gets _ ->
      if t.pool_gets_top < Array.length t.pool_gets then begin
        t.pool_gets.(t.pool_gets_top) <- msg;
        t.pool_gets_top <- t.pool_gets_top + 1
      end
    | Msg.L1_getm _ ->
      if t.pool_getm_top < Array.length t.pool_getm then begin
        t.pool_getm.(t.pool_getm_top) <- msg;
        t.pool_getm_top <- t.pool_getm_top + 1
      end
    | Msg.L1_data _ ->
      if t.pool_data_top < Array.length t.pool_data then begin
        t.pool_data.(t.pool_data_top) <- msg;
        t.pool_data_top <- t.pool_data_top + 1
      end
    | Msg.L1_unblock _ ->
      if t.pool_unblock_top < Array.length t.pool_unblock then begin
        t.pool_unblock.(t.pool_unblock_top) <- msg;
        t.pool_unblock_top <- t.pool_unblock_top + 1
      end
    | _ -> ()

(* Directory state lives in DRAM alongside the data: a transaction that
   fetches data pays one DRAM access for both; state-only decisions
   (forwards, grants) pay the DRAM lookup only in the dram-directory
   configuration. *)
let dir_lookup t k =
  let d = if t.dram_directory then t.cfg.Mcmp.Config.dram_latency else 0 in
  E.schedule_in t.engine d k

(* ------------------------------------------------------------------ *)
(* Forward declarations via mutual recursion                           *)

(* Gating discipline for one block at an L2 bank.

   Local requests run only when no local transaction is busy and no
   external (home-forwarded) transaction is in flight. External
   forwards additionally may run while a HOME-BOUND local transaction
   waits: that transaction is deferred at the home behind the very
   transaction that produced the forward, so blocking the forward on it
   would deadlock the hierarchy -- the classic coupled-protocol race of
   Section 1. Chip-internal local transactions (which may have a
   forward of their own outstanding to a local L1) do block externals.
   Deferred work re-checks its gate when popped, and every release
   drains until something claims the block again. *)
let rec release_ldir t node addr =
  ignore t;
  let d = get_ldir node addr in
  d.busy <- false;
  drain_ldir t node addr

and can_run_ext d =
  d.ext = None && d.wb_from = None
  &&
  (* Home-bound transactions must admit external forwards (the home may
     be serving another chip and waiting on us), but not once the data
     grant has been sent: until the grantee's unblock arrives the grant
     is still in flight, and a forward or invalidation racing ahead of
     it would reach an L1 that has not received its data yet. That
     window is bounded by local latency, so deferring is deadlock-free. *)
  match d.tr with
  | Some tr -> tr.lt_home_bound && not tr.lt_done
  | None -> not d.busy

and drain_ldir t node addr =
  let d = get_ldir node addr in
  if can_run_ext d && not (Queue.is_empty d.defer_ext) then begin
    (match Queue.take_opt d.defer_ext with Some k -> k () | None -> ());
    drain_ldir t node addr
  end
  else if (not d.busy) && d.ext = None && not (Queue.is_empty d.defer) then begin
    (match Queue.take_opt d.defer with Some k -> k () | None -> ());
    drain_ldir t node addr
  end

and gate_local t node addr start =
  let d = get_ldir node addr in
  let rec k () =
    let d = get_ldir node addr in
    if d.busy || d.ext <> None then Queue.push k d.defer else start ()
  in
  if d.busy || d.ext <> None then Queue.push k d.defer
  else begin
    start ();
    (* the transaction just started may be home-bound, unblocking
       queued external forwards *)
    drain_ldir t node addr
  end

and release_cdir t node addr =
  ignore t;
  let d = get_cdir node addr in
  d.cbusy <- false;
  match Queue.take_opt d.cdefer with Some k -> k () | None -> ()

(* ---- L2 data array management ---- *)

(* Evict the LRU L2 data line to make room; dirty chip-owned data (and
   clean exclusively-held data) relinquishes chip ownership with a
   three-phase writeback to home. *)
and evict_l2_data t node vaddr (vline : l2_line) =
  Cache.Sarray.remove node.l2_data vaddr;
  let d = get_ldir node vaddr in
  let chip_responsible = d.owner_l1 = None && (d.chip = CEx || d.chip = COwn) in
  if chip_responsible then begin
    t.counters.Mcmp.Counters.writebacks <- t.counters.Mcmp.Counters.writebacks + 1;
    let still_shared = d.sharers <> 0 in
    Hashtbl.replace node.l2_wb vaddr { wb_dirty = vline.l2_dirty; wb_stale = false };
    send1 t ~src:node.id ~dst:(home_mem t vaddr) ~cls:MC.Writeback_control ~bytes:(ctrl t)
      (Msg.C_wb_req
         { addr = vaddr; cmp = node_cmp node; l2 = node.id; dirty = vline.l2_dirty; still_shared })
  end

and install_l2_data t node addr ~dirty =
  match Cache.Sarray.find node.l2_data addr with
  | Some line -> line.l2_dirty <- line.l2_dirty || dirty
  | None ->
    (match Cache.Sarray.victim_for node.l2_data addr with
    | Some (vaddr, vline) -> evict_l2_data t node vaddr vline
    | None -> ());
    Cache.Sarray.insert node.l2_data addr { l2_dirty = dirty }

and drop_l2_data node addr =
  Cache.Sarray.remove node.l2_data addr;
  match Hashtbl.find_opt node.l2_wb addr with
  | Some wb -> wb.wb_stale <- true
  | None -> ()

(* ---- Local invalidations (fire-and-forget; acks are traffic-only) ---- *)

and invalidate_local_sharers t node addr ~except =
  let d = get_ldir node addr in
  let bits = d.sharers land lnot except in
  d.sharers <- d.sharers land except;
  let dsts = l1_dstset t (node_cmp node) bits in
  if not (Interconnect.Destset.is_empty dsts) then
    F.send_set t.fabric ~src:node.id ~dsts ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
      (Msg.L1_inv { addr })

(* ------------------------------------------------------------------ *)
(* L1 side                                                             *)

and l1_line node addr = Cache.Sarray.find node.l1_lines addr

(* Install a granted block at the requesting L1, evicting if needed. *)
and l1_install t node addr st =
  let from_state =
    if E.tracing t.engine then
      match Cache.Sarray.find node.l1_lines addr with
      | Some line -> l1_state_name line.st
      | None -> "I"
    else ""
  in
  (match Cache.Sarray.find node.l1_lines addr with
  | Some line ->
    line.st <- st;
    Cache.Sarray.touch node.l1_lines addr
  | None ->
    (match Cache.Sarray.victim_for node.l1_lines addr with
    | Some (vaddr, vline) -> l1_evict t node vaddr vline
    | None -> ());
    Cache.Sarray.insert node.l1_lines addr { st; hold_until = 0 });
  if E.tracing t.engine then
    E.emit t.engine
      (Obs.Event.Fsm
         { node = node.id; addr; fsm = "l1"; from_state; to_state = l1_state_name st });
  match Cache.Sarray.find node.l1_lines addr with Some l -> l | None -> assert false

and l1_evict t node vaddr (vline : l1_line) =
  Cache.Sarray.remove node.l1_lines vaddr;
  if E.tracing t.engine then
    E.emit t.engine
      (Obs.Event.Fsm
         { node = node.id; addr = vaddr; fsm = "l1";
           from_state = l1_state_name vline.st; to_state = "I" });
  match vline.st with
  | S -> ()  (* silent drop; stale sharer bits are tolerated *)
  | M | O | Es ->
    t.counters.Mcmp.Counters.writebacks <- t.counters.Mcmp.Counters.writebacks + 1;
    node.wb_serial <- node.wb_serial + 1;
    Hashtbl.replace node.l1_wb vaddr (vline.st, node.wb_serial);
    let dirty = vline.st <> Es in
    send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) vaddr) ~cls:MC.Writeback_control
      ~bytes:(ctrl t)
      (Msg.L1_wb_req { addr = vaddr; l1 = node.id; dirty; serial = node.wb_serial })

(* Owner L1 answers a forward from its L2 bank, possibly from the
   writeback buffer. Deferred by the response-delay window. *)
and l1_handle_fwd t node addr ~getm =
  let rec attempt () =
    let buffered = Hashtbl.find_opt node.l1_wb addr in
    let line = l1_line node addr in
    let st =
      match (line, buffered) with
      | Some l, _ -> Some l.st
      | None, Some (st, _) -> Some st
      | None, None -> None
    in
    match st with
    | None ->
      (* Reachable only through the writeback race: our wb_grant
         consumed the buffer and the wb_data carrying the block is in
         flight to the L2, which still records us as owner. Answer
         clean so the L2 falls back to the arriving writeback copy.
         (Forwards deferred during grant-in-flight windows and
         fire-and-forget migrate cleanups keep every other stale-owner
         path closed; answering from one of those here is how stale
         forwards used to steal live grants.) *)
      send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Response_data
        ~bytes:(datab t)
        (Msg.L1_owner_data { addr; l1 = node.id; dirty = false; migrated = false })
    | Some st ->
      let hold = match line with Some l -> l.hold_until | None -> 0 in
      if now t < hold then E.schedule_at t.engine hold attempt
      else begin
        let dirty = st = M || st = O in
        let migrated = getm || (t.migratory && st = M) in
        (* State update: GETM or migratory GETS invalidates; GETS
           downgrades M/Es to O/S. *)
        (if migrated then begin
           (match line with Some _ -> Cache.Sarray.remove node.l1_lines addr | None -> ());
           Hashtbl.remove node.l1_wb addr
         end
         else begin
           (match line with
           | Some l -> l.st <- (match l.st with M -> O | Es -> S | O -> O | S -> S)
           | None -> ());
           match Hashtbl.find_opt node.l1_wb addr with
           | Some (st, serial) ->
             Hashtbl.replace node.l1_wb addr
               ((match st with M -> O | Es -> S | other -> other), serial)
           | None -> ()
         end);
        send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Response_data
          ~bytes:(datab t)
          (Msg.L1_owner_data { addr; l1 = node.id; dirty; migrated })
      end
  in
  E.schedule_in t.engine t.cfg.Mcmp.Config.l1_latency attempt

and l1_handle_inv t node addr =
  E.schedule_in t.engine t.cfg.Mcmp.Config.l1_latency (fun () ->
      (match l1_line node addr with
      | Some line ->
        Cache.Sarray.remove node.l1_lines addr;
        if E.tracing t.engine then
          E.emit t.engine
            (Obs.Event.Fsm
               { node = node.id; addr; fsm = "l1"; from_state = l1_state_name line.st;
                 to_state = "I" })
      | None -> ());
      (* Ack is traffic-only: local invalidations are serialized at the
         L2 bank, so nothing waits on it. *)
      send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Inv_fwd_ack_tokens
        ~bytes:(ctrl t)
        (Msg.L1_inv_ack { addr; l1 = node.id }))

and l1_handle_data t node addr ~excl ~dirty ~origin ~unblock =
  let m =
    match node.mshr with
    | Some m when m.m_addr = addr -> m
    | Some _ | None -> assert false
  in
  (* Runs at delivery time, so this response marker lands at the exact
     instant the fabric's hop record says the data arrived — that
     match is what charges the hop's queue/flight to the span. *)
  if E.tracing t.engine then
    E.emit t.engine
      (Obs.Event.Req_response
         { tid = m.m_tid; node = node.id; src = home_l2 t ~cmp:(node_cmp node) addr });
  node.mshr <- None;
  let st =
    if excl then if m.m_rw = `W || dirty then M else Es
    else S
  in
  let line = l1_install t node addr st in
  if m.m_rw = `W then begin
    line.st <- M;
    line.hold_until <- now t + t.cfg.Mcmp.Config.response_delay
  end;
  let c = t.counters in
  let lat_ns = Sim.Time.to_ns (now t - m.m_issued) in
  (* Upgrade outranks the fill origin: a write miss on a resident line
     is a permission fetch even when acks come from another chip. *)
  let cause =
    if m.m_upgrade then Obs.Event.Upgrade
    else
      match origin with
      | Msg.Chip -> Obs.Event.Sharing_local
      | Msg.Remote -> Obs.Event.Sharing_remote
      | Msg.Memdram -> Obs.Event.Cold
  in
  Mcmp.Counters.record_miss c ~cause lat_ns;
  (match origin with
  | Msg.Chip -> c.Mcmp.Counters.l2_local_fills <- c.Mcmp.Counters.l2_local_fills + 1
  | Msg.Remote -> c.Mcmp.Counters.remote_fills <- c.Mcmp.Counters.remote_fills + 1
  | Msg.Memdram -> c.Mcmp.Counters.mem_fills <- c.Mcmp.Counters.mem_fills + 1);
  if E.tracing t.engine then
    E.emit t.engine
      (Obs.Event.Req_retire
         { tid = m.m_tid; node = node.id; proc = m.m_proc; addr;
           rw = (match m.m_rw with `W -> Obs.Event.W | `R -> Obs.Event.R);
           fill =
             (match origin with
             | Msg.Chip -> Obs.Event.Fill_l2
             | Msg.Remote -> Obs.Event.Fill_remote
             | Msg.Memdram -> Obs.Event.Fill_memory);
           cause; retries = 0; persistent = false });
  (* Only transaction grants hold the block busy at the L2; a direct
     response must not emit an unblock that could clear an unrelated
     in-flight transaction. *)
  if unblock then
    send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Unblock
      ~bytes:(ctrl t)
      (alloc_l1_unblock t ~addr ~l1:node.id);
  m.m_commit ()

(* ------------------------------------------------------------------ *)
(* L2 bank: local transactions                                         *)

and maybe_complete_local t node addr =
  let d = get_ldir node addr in
  match d.tr with
  | None -> ()
  | Some tr ->
    if
      (not tr.lt_done) && (not tr.lt_await_data) && tr.lt_acks_known
      && tr.lt_acks_got >= tr.lt_acks_expected
    then begin
      tr.lt_done <- true;
      let excl = tr.lt_excl in
      (* Origin stays Memdram exactly when the home memory served the
         data after its DRAM wait, so charge that wait to the span. *)
      if E.tracing t.engine && tr.lt_origin = Msg.Memdram then
        E.emit t.engine
          (Obs.Event.Mem_hop
             { requester = tr.lt_l1;
               ns = Sim.Time.to_ns t.cfg.Mcmp.Config.dram_latency });
      send1 t ~src:node.id ~dst:tr.lt_l1 ~cls:MC.Response_data ~bytes:(datab t)
        (alloc_l1_data t ~addr ~excl ~dirty:tr.lt_dirty ~origin:tr.lt_origin
           ~unblock:true);
      if excl then begin
        d.owner_l1 <- Some tr.lt_l1;
        d.sharers <- 0;
        d.chip <- CEx;
        drop_l2_data node addr
      end
      else begin
        d.sharers <- d.sharers lor local_l1_bit t tr.lt_l1;
        if d.chip = CInv then d.chip <- CSh
      end;
      if tr.lt_home_bound then
        send1 t ~src:node.id ~dst:(home_mem t addr) ~cls:MC.Unblock ~bytes:(ctrl t)
          (Msg.C_unblock { addr; cmp = node_cmp node; excl; shared = not excl })
      (* busy stays set until the L1's unblock *)
    end

and l2_handle_local_gets t node addr ~l1 =
  if E.tracing t.engine then
    E.emit t.engine
      (Obs.Event.Lookup
         { node = node.id; level = Obs.Event.L2; addr;
           hit = l2_chip_data node addr <> None });
  let d = get_ldir node addr in
  let start () =
    match d.owner_l1 with
    | Some o when o <> l1 ->
      (* Data lives in a local L1: forward; completes on owner data. *)
      d.busy <- true;
      d.tr <-
        Some
          {
            lt_kind = `S;
            lt_l1 = l1;
            lt_home_bound = false;
            lt_await_data = true;
            lt_acks_expected = 0;
            lt_acks_known = true;
            lt_acks_got = 0;
            lt_dirty = false;
            lt_excl = false;
            lt_origin = Msg.Chip;
            lt_done = false;
          };
      send1 t ~src:node.id ~dst:o ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
        (Msg.L1_fwd_gets { addr })
    | Some _ | None -> (
      match l2_chip_data node addr with
      | Some dirty ->
        (* Direct response, no busy state needed. *)
        d.sharers <- d.sharers lor local_l1_bit t l1;
        if d.chip = CInv then d.chip <- CSh;
        Cache.Sarray.touch node.l2_data addr;
        send1 t ~src:node.id ~dst:l1 ~cls:MC.Response_data ~bytes:(datab t)
          (alloc_l1_data t ~addr ~excl:false ~dirty ~origin:Msg.Chip ~unblock:false)
      | None ->
        (* Chip has nothing usable: ask the inter-CMP directory. *)
        d.busy <- true;
        d.tr <-
          Some
            {
              lt_kind = `S;
              lt_l1 = l1;
              lt_home_bound = true;
              lt_await_data = true;
              lt_acks_expected = 0;
              lt_acks_known = false;
              lt_acks_got = 0;
              lt_dirty = false;
              lt_excl = false;
              lt_origin = Msg.Memdram;
              lt_done = false;
            };
        send1 t ~src:node.id ~dst:(home_mem t addr) ~cls:MC.Request ~bytes:(ctrl t)
          (Msg.C_gets { addr; l2 = node.id }))
  in
  gate_local t node addr start

and l2_handle_local_getm t node addr ~l1 =
  if E.tracing t.engine then
    E.emit t.engine
      (Obs.Event.Lookup
         { node = node.id; level = Obs.Event.L2; addr;
           hit = l2_chip_data node addr <> None });
  let d = get_ldir node addr in
  let start () =
    d.busy <- true;
    let chip_satisfiable = d.chip = CEx in
    let requester_has_data =
      match d.owner_l1 with Some o -> o = l1 | None -> false
    in
    let tr =
      {
        lt_kind = `M;
        lt_l1 = l1;
        lt_home_bound = not chip_satisfiable;
        lt_await_data = false;
        lt_acks_expected = 0;
        lt_acks_known = chip_satisfiable;
        lt_acks_got = 0;
        lt_dirty = false;
        lt_excl = true;
        lt_origin = Msg.Chip;
        lt_done = false;
      }
    in
    d.tr <- Some tr;
    invalidate_local_sharers t node addr ~except:(local_l1_bit t l1);
    if chip_satisfiable then begin
      (match d.owner_l1 with
      | Some o when o <> l1 ->
        tr.lt_await_data <- true;
        send1 t ~src:node.id ~dst:o ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
          (Msg.L1_fwd_getm { addr })
      | Some _ -> ()  (* upgrading owner keeps its data *)
      | None -> (
        match l2_chip_data node addr with
        | Some dirty -> tr.lt_dirty <- dirty
        | None -> assert false (* CEx chips hold data somewhere *)));
      maybe_complete_local t node addr
    end
    else begin
      (* Need the inter-CMP directory: permissions, remote invs, and
         possibly data. Data may be local (L2 copy or an owning L1) but
         is only trusted once the home confirms this chip still owns
         the block (C_acks_expected); otherwise the forwarded owner's
         C_data supplies it. lt_acks_known stays false until then, so
         no early grant can race with a concurrent remote writer. *)
      if not requester_has_data then
        tr.lt_await_data <- (match l2_chip_data node addr with
          | Some dirty ->
            tr.lt_dirty <- dirty;
            false
          | None -> true);
      send1 t ~src:node.id ~dst:(home_mem t addr) ~cls:MC.Request ~bytes:(ctrl t)
        (Msg.C_getm { addr; l2 = node.id });
      maybe_complete_local t node addr
    end
  in
  gate_local t node addr start

and l2_handle_owner_data t node addr ~dirty ~migrated =
  let d = get_ldir node addr in
  match (d.ext, d.tr) with
  | Some ext, _ -> l2_ext_owner_data t node addr ext ~dirty ~migrated
  | None, Some tr when tr.lt_await_data ->
    tr.lt_await_data <- false;
    tr.lt_dirty <- dirty;
    (match tr.lt_kind with
    | `M ->
      d.owner_l1 <- None  (* invalidated by the fwd *)
    | `S ->
      if migrated then begin
        tr.lt_excl <- true;
        d.owner_l1 <- None
      end
      else
        (* Owner downgraded to O and keeps supplying data; cache a copy
           at the L2 as well. *)
        install_l2_data t node addr ~dirty);
    maybe_complete_local t node addr
  | None, (Some _ | None) -> ()

and l2_handle_unblock t node addr =
  let d = get_ldir node addr in
  match d.tr with
  | Some _ ->
    d.tr <- None;
    release_ldir t node addr
  | None -> ()  (* unblock of a direct response: nothing was held *)

(* ---- L1 writebacks at the L2 ---- *)

and l2_handle_wb_req t node addr ~l1 ~dirty ~serial =
  ignore dirty;
  let d = get_ldir node addr in
  let start () =
    if d.owner_l1 = Some l1 then begin
      d.busy <- true;
      d.wb_from <- Some l1;
      send1 t ~src:node.id ~dst:l1 ~cls:MC.Writeback_control ~bytes:(ctrl t)
        (Msg.L1_wb_grant { addr; serial })
    end
    else
      send1 t ~src:node.id ~dst:l1 ~cls:MC.Writeback_control ~bytes:(ctrl t)
        (Msg.L1_wb_cancel { addr; serial })
  in
  gate_local t node addr start

and l2_handle_wb_data t node addr ~dirty ~valid =
  let d = get_ldir node addr in
  (* an invalid reply answers a stale grant: nothing was written back,
     so neither data nor ownership state may change *)
  if valid then begin
    install_l2_data t node addr ~dirty;
    d.owner_l1 <- None
  end;
  d.wb_from <- None;
  release_ldir t node addr

(* ------------------------------------------------------------------ *)
(* L2 bank: external (inter-CMP) traffic                               *)

and l2_defer_ext_if_internal t node addr k =
  ignore t;
  let d = get_ldir node addr in
  if can_run_ext d then k () else Queue.push k d.defer_ext

and l2_handle_c_fwd t node addr ~requester_l2 ~getm ~acks =
  l2_defer_ext_if_internal t node addr (fun () ->
      let d = get_ldir node addr in
      d.ext <-
        Some { et_kind = (if getm then `M else `S); et_requester_l2 = requester_l2; et_acks = acks };
      if getm then invalidate_local_sharers t node addr ~except:0;
      match d.owner_l1 with
      | Some o -> l1_send_fwd_for_ext t node addr o ~getm
      | None -> (
        match l2_chip_data node addr with
        | Some dirty -> l2_ext_owner_data t node addr
                          (match d.ext with Some e -> e | None -> assert false)
                          ~dirty ~migrated:false
        | None ->
          (* Lost data (should not happen): fall back to a clean reply. *)
          l2_ext_owner_data t node addr
            (match d.ext with Some e -> e | None -> assert false)
            ~dirty:false ~migrated:false))

and l1_send_fwd_for_ext t node addr o ~getm =
  send1 t ~src:node.id ~dst:o ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
    (if getm then Msg.L1_fwd_getm { addr } else Msg.L1_fwd_gets { addr })

(* The chip's data (from an L1 or the L2 itself) is ready to ship to the
   external requester. *)
and l2_ext_owner_data t node addr ext ~dirty ~migrated =
  let d = get_ldir node addr in
  let getm = ext.et_kind = `M in
  let migrate_chip =
    getm || migrated || (t.migratory && dirty && d.sharers = 0 && d.owner_l1 <> None)
  in
  let migrate_chip =
    (* L2-held dirty data migrates on GETS too when nothing local shares. *)
    migrate_chip || (t.migratory && dirty && d.sharers = 0 && d.owner_l1 = None && getm = false)
  in
  let excl = getm || migrate_chip in
  (match ext.et_kind with
  | `M ->
    d.owner_l1 <- None;
    d.sharers <- 0;
    d.chip <- CInv;
    drop_l2_data node addr
  | `S ->
    if migrate_chip then begin
      (* A mig=true responder already invalidated itself; an O-state
         responder kept its line and must be told to drop it. Use a
         fire-and-forget invalidation, not a forward: a forward elicits
         an owner-data response, and that stray response could arrive
         epochs later and be mistaken for a live transaction's data. *)
      (match d.owner_l1 with
      | Some o when not migrated ->
        send1 t ~src:node.id ~dst:o ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
          (Msg.L1_inv { addr })
      | Some _ | None -> ());
      d.owner_l1 <- None;
      d.sharers <- 0;
      d.chip <- CInv;
      drop_l2_data node addr
    end
    else begin
      if not migrated then install_l2_data t node addr ~dirty;
      d.chip <- COwn
    end);
  d.ext <- None;
  send1 t ~src:node.id ~dst:ext.et_requester_l2 ~cls:MC.Response_data ~bytes:(datab t)
    (Msg.C_data { addr; excl; dirty; from_home = false; acks = ext.et_acks });
  drain_ldir t node addr

and l2_handle_c_inv t node addr ~requester_l2 =
  let d = get_ldir node addr in
  invalidate_local_sharers t node addr ~except:0;
  drop_l2_data node addr;
  d.chip <- CInv;
  send1 t ~src:node.id ~dst:requester_l2 ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
    (Msg.C_inv_ack { addr })

and l2_handle_c_data t node addr ~excl ~dirty ~from_home ~acks =
  let d = get_ldir node addr in
  match d.tr with
  | Some tr ->
    tr.lt_await_data <- false;
    tr.lt_dirty <- tr.lt_dirty || dirty;
    if excl then tr.lt_excl <- true;
    tr.lt_acks_expected <- tr.lt_acks_expected + acks;
    tr.lt_acks_known <- true;
    tr.lt_origin <- (if from_home then Msg.Memdram else Msg.Remote);
    if not tr.lt_excl then install_l2_data t node addr ~dirty;
    maybe_complete_local t node addr
  | None -> ()

and l2_handle_c_acks_expected t node addr ~acks =
  let d = get_ldir node addr in
  match d.tr with
  | Some tr ->
    tr.lt_acks_expected <- tr.lt_acks_expected + acks;
    tr.lt_acks_known <- true;
    (* The home replied instead of forwarding: this chip holds the
       data. The home stays busy until our unblock, so no external
       transaction can interfere with a local fetch. *)
    if tr.lt_await_data then begin
      match d.owner_l1 with
      | Some o when o <> tr.lt_l1 ->
        send1 t ~src:node.id ~dst:o ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
          (Msg.L1_fwd_getm { addr })
      | Some _ | None -> (
        match l2_chip_data node addr with
        | Some dirty ->
          tr.lt_await_data <- false;
          tr.lt_dirty <- tr.lt_dirty || dirty
        | None -> ())
    end;
    maybe_complete_local t node addr
  | None -> ()

and l2_handle_c_inv_ack t node addr =
  let d = get_ldir node addr in
  match d.tr with
  | Some tr ->
    tr.lt_acks_got <- tr.lt_acks_got + 1;
    maybe_complete_local t node addr
  | None -> ()

and l2_handle_c_wb_grant t node addr =
  match Hashtbl.find_opt node.l2_wb addr with
  | Some wb ->
    Hashtbl.remove node.l2_wb addr;
    let d = get_ldir node addr in
    let cancelled = wb.wb_stale in
    let still_shared = d.sharers <> 0 in
    if not cancelled then d.chip <- (if still_shared then CSh else CInv);
    send1 t ~src:node.id ~dst:(home_mem t addr)
      ~cls:(if cancelled then MC.Writeback_control else MC.Writeback_data)
      ~bytes:(if cancelled then ctrl t else datab t)
      (Msg.C_wb_data { addr; cmp = node_cmp node; dirty = wb.wb_dirty; still_shared; cancelled })
  | None ->
    send1 t ~src:node.id ~dst:(home_mem t addr) ~cls:MC.Writeback_control ~bytes:(ctrl t)
      (Msg.C_wb_data
         { addr; cmp = node_cmp node; dirty = false; still_shared = false; cancelled = true })

and l2_handle_c_wb_cancel _t node addr = Hashtbl.remove node.l2_wb addr

(* ------------------------------------------------------------------ *)
(* Home memory controller (inter-CMP directory)                        *)

and cmp_bits_to_l2s t addr bits ~except =
  List.concat_map
    (fun cmp ->
      if cmp = except || bits land (1 lsl cmp) = 0 then [] else [ home_l2 t ~cmp addr ])
    (List.init t.cfg.Mcmp.Config.ncmp (fun c -> c))

and mem_handle_gets t node addr ~l2 =
  let d = get_cdir node addr in
  let cmp = L.cmp_of t.layout l2 in
  let start () =
    d.cbusy <- true;
    match d.owner with
    | Some oc when oc <> cmp ->
      t.counters.Mcmp.Counters.dir_indirections <-
        t.counters.Mcmp.Counters.dir_indirections + 1;
      if E.tracing t.engine then
        E.emit t.engine (Obs.Event.Dir_indirection { node = node.id; addr; write = false });
      dir_lookup t (fun () ->
          send1 t ~src:node.id ~dst:(home_l2 t ~cmp:oc addr) ~cls:MC.Inv_fwd_ack_tokens
            ~bytes:(ctrl t)
            (Msg.C_fwd_gets { addr; requester_l2 = l2 }))
    | Some _ ->
      (* Requester owns it at chip level; grant from memory data. *)
      E.schedule_in t.engine t.cfg.Mcmp.Config.dram_latency (fun () ->
          send1 t ~src:node.id ~dst:l2 ~cls:MC.Response_data ~bytes:(datab t)
            (Msg.C_data { addr; excl = false; dirty = false; from_home = true; acks = 0 }))
    | None ->
      let excl = d.csharers = 0 in
      E.schedule_in t.engine t.cfg.Mcmp.Config.dram_latency (fun () ->
          send1 t ~src:node.id ~dst:l2 ~cls:MC.Response_data ~bytes:(datab t)
            (Msg.C_data { addr; excl; dirty = false; from_home = true; acks = 0 }))
  in
  if d.cbusy then Queue.push start d.cdefer else start ()

and mem_handle_getm t node addr ~l2 =
  let d = get_cdir node addr in
  let cmp = L.cmp_of t.layout l2 in
  let start () =
    d.cbusy <- true;
    let others = d.csharers land lnot (1 lsl cmp) in
    let inv_targets = cmp_bits_to_l2s t addr others ~except:cmp in
    List.iter
      (fun dst ->
        send1 t ~src:node.id ~dst ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
          (Msg.C_inv { addr; requester_l2 = l2 }))
      inv_targets;
    let nacks = List.length inv_targets in
    match d.owner with
    | Some oc when oc <> cmp ->
      t.counters.Mcmp.Counters.dir_indirections <-
        t.counters.Mcmp.Counters.dir_indirections + 1;
      if E.tracing t.engine then
        E.emit t.engine (Obs.Event.Dir_indirection { node = node.id; addr; write = true });
      send1 t ~src:node.id ~dst:(home_l2 t ~cmp:oc addr) ~cls:MC.Inv_fwd_ack_tokens
        ~bytes:(ctrl t)
        (Msg.C_fwd_getm { addr; requester_l2 = l2; acks = nacks })
    | Some _ ->
      (* Upgrade by the owning chip: permissions + acks only. *)
      send1 t ~src:node.id ~dst:l2 ~cls:MC.Inv_fwd_ack_tokens ~bytes:(ctrl t)
        (Msg.C_acks_expected { addr; acks = nacks })
    | None ->
      E.schedule_in t.engine t.cfg.Mcmp.Config.dram_latency (fun () ->
          send1 t ~src:node.id ~dst:l2 ~cls:MC.Response_data ~bytes:(datab t)
            (Msg.C_data { addr; excl = true; dirty = false; from_home = true; acks = nacks }))
  in
  if d.cbusy then Queue.push start d.cdefer else start ()

and mem_handle_unblock t node addr ~cmp ~excl ~shared =
  let d = get_cdir node addr in
  if excl then begin
    d.owner <- Some cmp;
    d.csharers <- 0
  end
  else if shared then d.csharers <- d.csharers lor (1 lsl cmp);
  release_cdir t node addr

and mem_handle_wb_req t node addr ~cmp ~l2 ~dirty:_ ~still_shared:_ =
  let d = get_cdir node addr in
  let start () =
    if d.owner = Some cmp then begin
      d.cbusy <- true;
      dir_lookup t (fun () ->
          send1 t ~src:node.id ~dst:l2 ~cls:MC.Writeback_control ~bytes:(ctrl t)
            (Msg.C_wb_grant { addr }))
    end
    else
      dir_lookup t (fun () ->
          send1 t ~src:node.id ~dst:l2 ~cls:MC.Writeback_control ~bytes:(ctrl t)
            (Msg.C_wb_cancel { addr }))
  in
  if d.cbusy then Queue.push start d.cdefer else start ()

and mem_handle_wb_data t node addr ~cmp ~still_shared ~cancelled =
  let d = get_cdir node addr in
  if not cancelled then begin
    d.owner <- None;
    if still_shared then d.csharers <- d.csharers lor (1 lsl cmp)
    else d.csharers <- d.csharers land lnot (1 lsl cmp)
  end;
  release_cdir t node addr

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let l2_delay t k = E.schedule_in t.engine t.cfg.Mcmp.Config.l2_latency k

let mem_delay t k = E.schedule_in t.engine t.cfg.Mcmp.Config.mem_ctrl_latency k

let handle t ~dst msg =
  let node = t.nodes.(dst) in
  match msg with
  (* L1-side *)
  | Msg.L1_fwd_gets { addr } -> l1_handle_fwd t node addr ~getm:false
  | Msg.L1_fwd_getm { addr } -> l1_handle_fwd t node addr ~getm:true
  | Msg.L1_inv { addr } -> l1_handle_inv t node addr
  | Msg.L1_data { addr; excl; dirty; origin; unblock } ->
    l1_handle_data t node addr ~excl ~dirty ~origin ~unblock
  | Msg.L1_wb_grant { addr; serial } -> (
    match Hashtbl.find_opt node.l1_wb addr with
    | Some (st, s') when s' = serial ->
      Hashtbl.remove node.l1_wb addr;
      let dirty = st = M || st = O in
      send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Writeback_data
        ~bytes:(datab t)
        (Msg.L1_wb_data { addr; l1 = node.id; dirty; valid = true })
    | Some _ | None ->
      (* stale grant: the buffer instance it answers is gone *)
      send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Writeback_control
        ~bytes:(ctrl t)
        (Msg.L1_wb_data { addr; l1 = node.id; dirty = false; valid = false }))
  | Msg.L1_wb_cancel { addr; serial } -> (
    (* a cancel may only kill the buffer instance it answers *)
    match Hashtbl.find_opt node.l1_wb addr with
    | Some (_, s') when s' = serial -> Hashtbl.remove node.l1_wb addr
    | Some _ | None -> ())
  (* L2-side, intra *)
  | Msg.L1_gets { addr; l1 } -> l2_delay t (fun () -> l2_handle_local_gets t node addr ~l1)
  | Msg.L1_getm { addr; l1 } -> l2_delay t (fun () -> l2_handle_local_getm t node addr ~l1)
  | Msg.L1_owner_data { addr; dirty; migrated; _ } ->
    l2_delay t (fun () -> l2_handle_owner_data t node addr ~dirty ~migrated)
  | Msg.L1_unblock { addr; _ } -> l2_handle_unblock t node addr
  | Msg.L1_inv_ack _ -> ()  (* traffic only; serialization makes acks redundant *)
  | Msg.L1_wb_req { addr; l1; dirty; serial } ->
    l2_delay t (fun () -> l2_handle_wb_req t node addr ~l1 ~dirty ~serial)
  | Msg.L1_wb_data { addr; dirty; valid; _ } ->
    l2_delay t (fun () -> l2_handle_wb_data t node addr ~dirty ~valid)
  (* L2-side, inter *)
  | Msg.C_fwd_gets { addr; requester_l2 } ->
    l2_delay t (fun () -> l2_handle_c_fwd t node addr ~requester_l2 ~getm:false ~acks:0)
  | Msg.C_fwd_getm { addr; requester_l2; acks } ->
    l2_delay t (fun () -> l2_handle_c_fwd t node addr ~requester_l2 ~getm:true ~acks)
  | Msg.C_inv { addr; requester_l2 } ->
    l2_delay t (fun () -> l2_handle_c_inv t node addr ~requester_l2)
  | Msg.C_data { addr; excl; dirty; from_home; acks } ->
    l2_delay t (fun () -> l2_handle_c_data t node addr ~excl ~dirty ~from_home ~acks)
  | Msg.C_acks_expected { addr; acks } ->
    l2_delay t (fun () -> l2_handle_c_acks_expected t node addr ~acks)
  | Msg.C_inv_ack { addr } -> l2_delay t (fun () -> l2_handle_c_inv_ack t node addr)
  | Msg.C_wb_grant { addr } -> l2_delay t (fun () -> l2_handle_c_wb_grant t node addr)
  | Msg.C_wb_cancel { addr } -> l2_handle_c_wb_cancel t node addr
  (* Memory-side *)
  | Msg.C_gets { addr; l2 } -> mem_delay t (fun () -> mem_handle_gets t node addr ~l2)
  | Msg.C_getm { addr; l2 } -> mem_delay t (fun () -> mem_handle_getm t node addr ~l2)
  | Msg.C_unblock { addr; cmp; excl; shared } ->
    E.schedule_in t.engine t.cfg.Mcmp.Config.mem_ctrl_latency (fun () ->
        mem_handle_unblock t node addr ~cmp ~excl ~shared)
  | Msg.C_wb_req { addr; cmp; l2; dirty; still_shared } ->
    mem_delay t (fun () -> mem_handle_wb_req t node addr ~cmp ~l2 ~dirty ~still_shared)
  | Msg.C_wb_data { addr; cmp; still_shared; cancelled; _ } ->
    E.schedule_in t.engine t.cfg.Mcmp.Config.mem_ctrl_latency (fun () ->
        mem_handle_wb_data t node addr ~cmp ~still_shared ~cancelled)

(* ------------------------------------------------------------------ *)
(* Processor-side entry point                                          *)

let access t ~proc ~kind addr ~commit =
  let cmp = proc / t.layout.L.procs_per_cmp and p = proc mod t.layout.L.procs_per_cmp in
  let l1id =
    match kind with
    | Mcmp.Protocol.Ifetch -> L.l1i t.layout ~cmp ~proc:p
    | Mcmp.Protocol.Read | Mcmp.Protocol.Write | Mcmp.Protocol.Atomic ->
      L.l1d t.layout ~cmp ~proc:p
  in
  let node = t.nodes.(l1id) in
  let write = Mcmp.Protocol.is_write kind in
  E.schedule_in t.engine t.cfg.Mcmp.Config.l1_latency (fun () ->
      let line = l1_line node addr in
      let hit =
        match line with
        | Some l -> ( match l.st with M | Es -> true | O | S -> not write)
        | None -> false
      in
      if E.tracing t.engine then
        E.emit t.engine
          (Obs.Event.Lookup { node = node.id; level = Obs.Event.L1; addr; hit });
      if hit then begin
        t.counters.Mcmp.Counters.l1_hits <- t.counters.Mcmp.Counters.l1_hits + 1;
        Cache.Sarray.touch node.l1_lines addr;
        (match line with
        | Some l when write ->
          l.st <- M;
          l.hold_until <- now t + t.cfg.Mcmp.Config.response_delay
        | _ -> ());
        commit ()
      end
      else begin
        t.counters.Mcmp.Counters.l1_misses <- t.counters.Mcmp.Counters.l1_misses + 1;
        assert (node.mshr = None);
        let tid = t.counters.Mcmp.Counters.l1_misses in
        node.mshr <-
          Some { m_addr = addr; m_rw = (if write then `W else `R);
                 m_upgrade = line <> None && write; m_commit = commit;
                 m_issued = now t; m_tid = tid; m_proc = proc };
        if E.tracing t.engine then
          E.emit t.engine
            (Obs.Event.Req_issue
               { tid; node = node.id; proc; addr;
                 rw = (if write then Obs.Event.W else Obs.Event.R) });
        let msg =
          if write then alloc_l1_getm t ~addr ~l1:node.id
          else alloc_l1_gets t ~addr ~l1:node.id
        in
        send1 t ~src:node.id ~dst:(home_l2 t ~cmp:(node_cmp node) addr) ~cls:MC.Request
          ~bytes:(ctrl t) msg
      end)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let make_node layout cfg id =
  let kind = L.kind layout id in
  let l1_geom, l2_geom =
    match kind with
    | L.L1d _ | L.L1i _ -> ((cfg.Mcmp.Config.l1_sets, cfg.Mcmp.Config.l1_ways), (1, 1))
    | L.L2 _ -> ((1, 1), (cfg.Mcmp.Config.l2_sets, cfg.Mcmp.Config.l2_ways))
    | L.Mem _ -> ((1, 1), (1, 1))
  in
  {
    id;
    kind;
    l1_lines = Cache.Sarray.create ~sets:(fst l1_geom) ~ways:(snd l1_geom);
    l1_wb = Hashtbl.create 8;
    wb_serial = 0;
    mshr = None;
    l2_data = Cache.Sarray.create ~sets:(fst l2_geom) ~ways:(snd l2_geom);
    ldir = Hashtbl.create 1024;
    l2_wb = Hashtbl.create 8;
    cdir = Hashtbl.create 1024;
  }

let name ~dram_directory = if dram_directory then "DirectoryCMP" else "DirectoryCMP-zero"

let make_t engine cfg layout fabric counters nodes ~migratory ~dram_directory =
  let filler = Msg.L1_inv { addr = 0 } in
  {
    engine;
    cfg;
    layout;
    fabric;
    counters;
    nodes;
    migratory;
    dram_directory;
    pool_gets = Array.make 256 filler;
    pool_gets_top = 0;
    pool_getm = Array.make 256 filler;
    pool_getm_top = 0;
    pool_data = Array.make 256 filler;
    pool_data_top = 0;
    pool_unblock = Array.make 256 filler;
    pool_unblock_top = 0;
  }

let builder ?migratory ~dram_directory () : Mcmp.Protocol.builder =
 fun engine cfg traffic rng counters ->
  let layout = Mcmp.Config.layout cfg in
  let fabric = F.create engine layout cfg.Mcmp.Config.fabric traffic (Sim.Rng.split rng) in
  let nodes = Array.init (L.node_count layout) (fun id -> make_node layout cfg id) in
  let t =
    make_t engine cfg layout fabric counters nodes
      ~migratory:(match migratory with Some m -> m | None -> cfg.Mcmp.Config.migratory)
      ~dram_directory
  in
  F.set_handler fabric (fun ~dst msg ->
      handle t ~dst msg;
      release_msg t msg);
  (match Obs.Registry.of_engine engine with
  | Some reg ->
    Obs.Registry.register_int reg "directory.outstanding_misses" (fun () ->
        Array.fold_left (fun acc n -> if n.mshr = None then acc else acc + 1) 0 t.nodes)
  | None -> ());
  {
    Mcmp.Protocol.name = name ~dram_directory;
    access = (fun ~proc ~kind addr ~commit -> access t ~proc ~kind addr ~commit);
  }

(* Diagnostic dump of all in-flight protocol state (tests/debugging). *)
let dump t fmt () =
  let lay = t.layout in
  Array.iter
    (fun node ->
      (match node.mshr with
      | Some m ->
        Format.fprintf fmt "%a: MSHR %a %s issued@%a@." (L.pp_node lay) node.id Cache.Addr.pp
          m.m_addr
          (match m.m_rw with `R -> "R" | `W -> "W")
          Sim.Time.pp m.m_issued
      | None -> ());
      Hashtbl.iter
        (fun addr (st, serial) ->
          Format.fprintf fmt "%a: wb buffer %a (%s #%d)@." (L.pp_node lay) node.id Cache.Addr.pp
            addr
            (match st with M -> "M" | O -> "O" | Es -> "E" | S -> "S")
            serial)
        node.l1_wb;
      Hashtbl.iter
        (fun addr (d : ldir) ->
          if
            d.busy || d.ext <> None
            || not (Queue.is_empty d.defer)
            || not (Queue.is_empty d.defer_ext)
          then
            Format.fprintf fmt "%a: ldir %a busy=%b tr=%s ext=%b wb_from=%s defer=%d@."
              (L.pp_node lay) node.id Cache.Addr.pp addr d.busy
              (match d.tr with
              | None -> "-"
              | Some tr ->
                Printf.sprintf "%s l1=%d home=%b await=%b acks=%d/%s done=%b"
                  (match tr.lt_kind with `S -> "S" | `M -> "M")
                  tr.lt_l1 tr.lt_home_bound tr.lt_await_data tr.lt_acks_got
                  (if tr.lt_acks_known then string_of_int tr.lt_acks_expected else "?")
                  tr.lt_done)
              (d.ext <> None)
              (match d.wb_from with Some i -> string_of_int i | None -> "-")
              (Queue.length d.defer + Queue.length d.defer_ext))
        node.ldir;
      Hashtbl.iter
        (fun addr (d : cdir) ->
          if d.cbusy || not (Queue.is_empty d.cdefer) then
            Format.fprintf fmt "%a: cdir %a busy=%b owner=%s sharers=%x defer=%d@."
              (L.pp_node lay) node.id Cache.Addr.pp addr d.cbusy
              (match d.owner with Some c -> string_of_int c | None -> "-")
              d.csharers (Queue.length d.cdefer))
        node.cdir)
    t.nodes

let pp_msg fmt (m : Msg.t) =
  let p = Format.fprintf in
  match m with
  | Msg.L1_gets { l1; _ } -> p fmt "L1_gets(from %d)" l1
  | Msg.L1_getm { l1; _ } -> p fmt "L1_getm(from %d)" l1
  | Msg.L1_data { excl; dirty; unblock; _ } ->
    p fmt "L1_data(excl=%b,dirty=%b,ub=%b)" excl dirty unblock
  | Msg.L1_fwd_gets _ -> p fmt "L1_fwd_gets"
  | Msg.L1_fwd_getm _ -> p fmt "L1_fwd_getm"
  | Msg.L1_inv _ -> p fmt "L1_inv"
  | Msg.L1_inv_ack _ -> p fmt "L1_inv_ack"
  | Msg.L1_owner_data { dirty; migrated; _ } -> p fmt "L1_owner_data(dirty=%b,mig=%b)" dirty migrated
  | Msg.L1_unblock _ -> p fmt "L1_unblock"
  | Msg.L1_wb_req _ -> p fmt "L1_wb_req"
  | Msg.L1_wb_grant _ -> p fmt "L1_wb_grant"
  | Msg.L1_wb_cancel _ -> p fmt "L1_wb_cancel"
  | Msg.L1_wb_data { dirty; valid; _ } -> p fmt "L1_wb_data(dirty=%b,valid=%b)" dirty valid
  | Msg.C_gets { l2; _ } -> p fmt "C_gets(from l2 %d)" l2
  | Msg.C_getm { l2; _ } -> p fmt "C_getm(from l2 %d)" l2
  | Msg.C_data { excl; dirty; from_home; acks; _ } ->
    p fmt "C_data(excl=%b,dirty=%b,home=%b,acks=%d)" excl dirty from_home acks
  | Msg.C_fwd_gets { requester_l2; _ } -> p fmt "C_fwd_gets(req l2 %d)" requester_l2
  | Msg.C_fwd_getm { requester_l2; acks; _ } -> p fmt "C_fwd_getm(req l2 %d,acks=%d)" requester_l2 acks
  | Msg.C_inv { requester_l2; _ } -> p fmt "C_inv(req l2 %d)" requester_l2
  | Msg.C_inv_ack _ -> p fmt "C_inv_ack"
  | Msg.C_acks_expected { acks; _ } -> p fmt "C_acks_expected(%d)" acks
  | Msg.C_unblock { cmp; excl; shared; _ } -> p fmt "C_unblock(cmp %d,excl=%b,sh=%b)" cmp excl shared
  | Msg.C_wb_req { cmp; _ } -> p fmt "C_wb_req(cmp %d)" cmp
  | Msg.C_wb_grant _ -> p fmt "C_wb_grant"
  | Msg.C_wb_cancel _ -> p fmt "C_wb_cancel"
  | Msg.C_wb_data { cancelled; _ } -> p fmt "C_wb_data(cancelled=%b)" cancelled

let msg_addr : Msg.t -> Cache.Addr.t = function
  | Msg.L1_gets { addr; _ } | Msg.L1_getm { addr; _ } | Msg.L1_data { addr; _ }
  | Msg.L1_fwd_gets { addr } | Msg.L1_fwd_getm { addr } | Msg.L1_inv { addr }
  | Msg.L1_inv_ack { addr; _ } | Msg.L1_owner_data { addr; _ } | Msg.L1_unblock { addr; _ }
  | Msg.L1_wb_req { addr; _ } | Msg.L1_wb_grant { addr; _ } | Msg.L1_wb_cancel { addr; _ }
  | Msg.L1_wb_data { addr; _ } | Msg.C_gets { addr; _ } | Msg.C_getm { addr; _ }
  | Msg.C_data { addr; _ } | Msg.C_fwd_gets { addr; _ } | Msg.C_fwd_getm { addr; _ }
  | Msg.C_inv { addr; _ } | Msg.C_inv_ack { addr } | Msg.C_acks_expected { addr; _ }
  | Msg.C_unblock { addr; _ } | Msg.C_wb_req { addr; _ } | Msg.C_wb_grant { addr }
  | Msg.C_wb_cancel { addr } | Msg.C_wb_data { addr; _ } ->
    addr

let builder_debug ?migratory ?trace ~dram_directory () engine cfg traffic rng counters =
  let layout = Mcmp.Config.layout cfg in
  let fabric = F.create engine layout cfg.Mcmp.Config.fabric traffic (Sim.Rng.split rng) in
  let nodes = Array.init (L.node_count layout) (fun id -> make_node layout cfg id) in
  let t =
    make_t engine cfg layout fabric counters nodes
      ~migratory:(match migratory with Some m -> m | None -> cfg.Mcmp.Config.migratory)
      ~dram_directory
  in
  F.set_handler fabric (fun ~dst msg ->
      (match trace with
      | Some a when msg_addr msg = a ->
        Format.eprintf "%a %a <- %a@." Sim.Time.pp (E.now engine) (L.pp_node layout) dst pp_msg
          msg
      | Some _ | None -> ());
      handle t ~dst msg;
      release_msg t msg);
  ( {
      Mcmp.Protocol.name = name ~dram_directory;
      access = (fun ~proc ~kind addr ~commit -> access t ~proc ~kind addr ~commit);
    },
    dump t )

(* ------------------------------------------------------------------ *)
(* Runtime invariant checking (the fault-injection monitor's probe)    *)

(* Conservative snapshot checks. Directory invalidations of local
   sharers are fire-and-forget (no wait for the ack before the grant in
   some races), so sharer-list cross-checks would false-positive;
   exclusivity of write permission is the safety property that must
   hold at every event boundary regardless. *)
let check_invariants t =
  let time = now t in
  let vs = ref [] in
  let add v = vs := v :: !vs in
  (* At most one L1 anywhere may hold write permission (M or Es). *)
  let excl_l1 : (Cache.Addr.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      Cache.Sarray.iter
        (fun addr (line : l1_line) ->
          match line.st with
          | M | Es -> (
            match Hashtbl.find_opt excl_l1 addr with
            | Some prev ->
              add
                (Mcmp.Violation.make ~kind:"double-exclusive-l1" ~addr ~node:node.id ~time
                   (Printf.sprintf "L1 nodes %d and %d both hold M/E" prev node.id))
            | None -> Hashtbl.replace excl_l1 addr node.id)
          | O | S -> ())
        node.l1_lines)
    t.nodes;
  (* At most one chip may be the exclusive holder. The chip-level view
     lives at each chip's home L2 bank for the block. *)
  let excl_chip : (Cache.Addr.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      match node.kind with
      | L.L2 { cmp; _ } ->
        Hashtbl.iter
          (fun addr (d : ldir) ->
            match d.chip with
            | CEx -> (
              match Hashtbl.find_opt excl_chip addr with
              | Some prev ->
                add
                  (Mcmp.Violation.make ~kind:"double-exclusive-chip" ~addr ~node:node.id
                     ~time (Printf.sprintf "chips %d and %d both believe they are CEx" prev cmp))
              | None -> Hashtbl.replace excl_chip addr cmp)
            | CInv | CSh | COwn -> ())
          node.ldir
      | L.L1d _ | L.L1i _ | L.Mem _ -> ())
    t.nodes;
  (* An L1 in M/E on a chip whose own view says the chip holds nothing
     means a lost invalidation. *)
  Hashtbl.iter
    (fun addr l1 ->
      let cmp = node_cmp t.nodes.(l1) in
      let home_bank = home_l2 t ~cmp addr in
      match Hashtbl.find_opt t.nodes.(home_bank).ldir addr with
      | Some d when d.chip = CInv && not d.busy ->
        add
          (Mcmp.Violation.make ~kind:"exclusive-on-invalid-chip" ~addr ~node:l1 ~time
             (Printf.sprintf "L1 %d holds M/E but its chip's directory entry is CInv" l1))
      | Some _ | None -> ())
    excl_l1;
  List.rev !vs

let outstanding_of t =
  Array.fold_left
    (fun acc node ->
      match node.mshr with
      | Some m ->
        {
          Mcmp.Probe.o_node = node.id;
          o_addr = m.m_addr;
          o_issued = m.m_issued;
          o_retries = 0;
          o_persistent = false;
        }
        :: acc
      | None -> acc)
    [] t.nodes

type instrumented = {
  i_handle : Mcmp.Protocol.handle;
  i_probe : Mcmp.Probe.t;
  i_dump : Format.formatter -> unit -> unit;
  i_fabric : Msg.t F.t;
}

let create_instrumented ?migratory ~dram_directory () engine cfg traffic rng counters =
  let layout = Mcmp.Config.layout cfg in
  let fabric = F.create engine layout cfg.Mcmp.Config.fabric traffic (Sim.Rng.split rng) in
  let nodes = Array.init (L.node_count layout) (fun id -> make_node layout cfg id) in
  let t =
    make_t engine cfg layout fabric counters nodes
      ~migratory:(match migratory with Some m -> m | None -> cfg.Mcmp.Config.migratory)
      ~dram_directory
  in
  F.set_handler fabric (fun ~dst msg ->
      handle t ~dst msg;
      release_msg t msg);
  F.set_msg_label fabric (fun msg -> Format.asprintf "%a %a" Cache.Addr.pp (msg_addr msg) pp_msg msg);
  {
    i_handle =
      {
        Mcmp.Protocol.name = name ~dram_directory;
        access = (fun ~proc ~kind addr ~commit -> access t ~proc ~kind addr ~commit);
      };
    i_probe =
      {
        Mcmp.Probe.check = (fun () -> check_invariants t);
        outstanding = (fun () -> outstanding_of t);
      };
    i_dump = dump t;
    i_fabric = fabric;
  }
