(** DirectoryCMP message vocabulary.

    Two coupled protocols: an intra-CMP directory protocol between L1s
    and their home L2 bank ([L1_*] messages), and an inter-CMP directory
    protocol between L2 banks and the home memory controller ([C_*]
    messages). Both levels use per-block busy states with deferral, and
    three-phase writebacks. *)

(** Where a data grant was satisfied, for fill statistics. *)
type origin = Chip | Remote | Memdram

type t =
  (* ---- intra-CMP: L1 <-> home L2 bank ---- *)
  (* The four mutable arms ([L1_gets], [L1_getm], [L1_data],
     [L1_unblock]) are pooled by {!Protocol} on fault-free runs;
     handlers must fully destructure them and never retain the record.
     Multicast arms ([L1_inv]) and everything else stay immutable. *)
  | L1_gets of { mutable addr : Cache.Addr.t; mutable l1 : int }
  | L1_getm of { mutable addr : Cache.Addr.t; mutable l1 : int }
  | L1_data of {
      mutable addr : Cache.Addr.t;
      mutable excl : bool;
      mutable dirty : bool;
      mutable origin : origin;
      mutable unblock : bool;
    }
      (** L2 -> requesting L1: data grant ([excl]: M/E permission) *)
  | L1_fwd_gets of { addr : Cache.Addr.t }
      (** L2 -> owner L1: supply data, downgrade (or migrate) *)
  | L1_fwd_getm of { addr : Cache.Addr.t }
      (** L2 -> owner L1: supply data, invalidate *)
  | L1_inv of { addr : Cache.Addr.t }  (** L2 -> sharer L1 *)
  | L1_inv_ack of { addr : Cache.Addr.t; l1 : int }
  | L1_owner_data of { addr : Cache.Addr.t; l1 : int; dirty : bool; migrated : bool }
      (** owner L1 -> L2 response to a fwd; [migrated] means the owner
          self-invalidated (migratory-sharing optimization) *)
  | L1_unblock of { mutable addr : Cache.Addr.t; mutable l1 : int }
  | L1_wb_req of { addr : Cache.Addr.t; l1 : int; dirty : bool; serial : int }
  | L1_wb_grant of { addr : Cache.Addr.t; serial : int }
  | L1_wb_cancel of { addr : Cache.Addr.t; serial : int }
  | L1_wb_data of { addr : Cache.Addr.t; l1 : int; dirty : bool; valid : bool }
      (** clean writebacks are control-sized, dirty carry the block *)
  (* ---- inter-CMP: L2 bank <-> home memory controller, L2 <-> L2 ---- *)
  | C_gets of { addr : Cache.Addr.t; l2 : int }
  | C_getm of { addr : Cache.Addr.t; l2 : int }
  | C_data of {
      addr : Cache.Addr.t;
      excl : bool;
      dirty : bool;
      from_home : bool;
      acks : int;  (** sharer-CMP invalidation acks the requester must collect *)
    }
  | C_fwd_gets of { addr : Cache.Addr.t; requester_l2 : int }
      (** home -> owner chip's L2 bank *)
  | C_fwd_getm of { addr : Cache.Addr.t; requester_l2 : int; acks : int }
  | C_inv of { addr : Cache.Addr.t; requester_l2 : int }
      (** home -> sharer chip; chip invalidates local copies then acks
          the requester *)
  | C_inv_ack of { addr : Cache.Addr.t }
  | C_acks_expected of { addr : Cache.Addr.t; acks : int }
      (** home -> requester L2 when data comes from a forwarded owner *)
  | C_unblock of { addr : Cache.Addr.t; cmp : int; excl : bool; shared : bool }
      (** requester L2 -> home: transaction done; resulting chip state *)
  | C_wb_req of { addr : Cache.Addr.t; cmp : int; l2 : int; dirty : bool; still_shared : bool }
  | C_wb_grant of { addr : Cache.Addr.t }
  | C_wb_cancel of { addr : Cache.Addr.t }
  | C_wb_data of { addr : Cache.Addr.t; cmp : int; dirty : bool; still_shared : bool; cancelled : bool }
