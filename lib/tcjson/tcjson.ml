type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

(* Two-space indented rendering: the BENCH_*.json files are committed,
   so line-oriented diffs across PRs must stay readable. *)
let rec render buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        render buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        escape buf k;
        Buffer.add_string buf ": ";
        render buf (indent + 2) item)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  render buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

(* --- parsing ------------------------------------------------------- *)

exception Parse_error of string

module P = struct
  type state = { s : string; mutable pos : int }

  let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None
  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> advance st
    | _ -> error st (Printf.sprintf "expected '%c'" c)

  let literal st word v =
    let n = String.length word in
    if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
      st.pos <- st.pos + n;
      v
    end
    else error st (Printf.sprintf "expected %s" word)

  let hex_digit st c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> error st "bad hex digit"

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek st with
      | None -> error st "unterminated string"
      | Some '"' -> advance st
      | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'u' ->
          advance st;
          let code = ref 0 in
          for _ = 1 to 4 do
            match peek st with
            | Some c ->
              code := (!code * 16) + hex_digit st c;
              advance st
            | None -> error st "truncated \\u escape"
          done;
          (* We only emit \uXXXX for control characters; decode the
             BMP code point as UTF-8 so round-trips are lossless. *)
          let c = !code in
          if c < 0x80 then Buffer.add_char buf (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
        | _ -> error st "bad escape");
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
    in
    loop ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek st with Some c -> is_num_char c | None -> false) do
      advance st
    done;
    let text = String.sub st.s start (st.pos - start) in
    if text = "" then error st "expected number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error st "malformed number")

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> error st "unexpected end of input"
    | Some 'n' -> literal st "null" Null
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some '"' -> String (parse_string st)
    | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number st
end

let parse s =
  let st = { P.s; pos = 0 } in
  match
    let v = P.parse_value st in
    P.skip_ws st;
    if st.P.pos <> String.length s then P.error st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> x = y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | _ -> false
