(** Minimal JSON representation, emitter and parser (no external JSON
    dependency in the toolchain). Sits at the bottom of the library
    stack so both the observability layer and the public facade can
    produce structured output.

    The emitter is two-space indented so the committed
    [BENCH_<section>.json] trajectory files keep line-oriented diffs;
    non-finite floats render as [null]. The parser accepts standard
    JSON (used to validate exported traces in tests and CI). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit

(** Canonical decimal representation used by the emitter: integers and
    small magnitudes as ["x.0"], otherwise the shortest form that
    round-trips; non-finite values become ["null"]. *)
val float_repr : float -> string

(** [parse s] reads one JSON value (plus surrounding whitespace). *)
val parse : string -> (t, string) result

(** [member key json] is the field [key] of an [Obj], if any. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option

(** Structural equality; [Int]/[Float] compare numerically. *)
val equal : t -> t -> bool
