type error = { index : int; label : string; exn : exn; backtrace : string }

exception Job_failed of error

let () =
  Printexc.register_printer (function
    | Job_failed e ->
      Some
        (Printf.sprintf "Pool.Job_failed(job %d: %s): %s" e.index e.label
           (Printexc.to_string e.exn))
    | _ -> None)

let available_jobs () = Domain.recommended_domain_count ()

let jobs_from_env ?(var = "TOKENCMP_JOBS") () =
  match Sys.getenv_opt var with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let resolve_jobs ?requested () =
  match requested with
  | Some n when n >= 1 -> n
  | Some _ -> available_jobs ()
  | None -> ( match jobs_from_env () with Some n -> n | None -> 1)

let default_label i _ = "job-" ^ string_of_int i

(* Strictly left-to-right serial execution: the [jobs <= 1] reference
   semantics the parallel path must reproduce. *)
let map_serial ~label f xs =
  let rec go i acc = function
    | [] -> List.rev acc
    | x :: rest -> (
      match f x with
      | r -> go (i + 1) (r :: acc) rest
      | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        raise (Job_failed { index = i; label = label i x; exn; backtrace }))
  in
  go 0 [] xs

let map ?(jobs = 1) ?label f xs =
  let label = match label with Some l -> l | None -> default_label in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then map_serial ~label f xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* Each worker claims the next unclaimed index; distinct jobs write
       to distinct slots, and [Domain.join] publishes them to the
       caller. Job identity, not worker identity, orders the output. *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f inputs.(i) with
        | r -> results.(i) <- Some r
        | exception exn ->
          let backtrace = Printexc.get_backtrace () in
          errors.(i) <- Some { index = i; label = label i inputs.(i); exn; backtrace });
        worker ()
      end
    in
    let workers = min jobs n in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain pulls jobs too, so [jobs] counts it. *)
    worker ();
    List.iter Domain.join domains;
    (* Lowest submission index wins: deterministic attribution no
       matter which worker hit its failure first. *)
    Array.iter (function Some e -> raise (Job_failed e) | None -> ()) errors;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false (* every index claimed *)) results)
  end
