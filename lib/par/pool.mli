(** Bounded worker pool over OCaml 5 domains.

    [map] executes a list of independent jobs on up to [jobs] domains
    and returns the results in submission order, so a parallel run is
    indistinguishable from a serial one as long as each job is
    self-contained (builds its own [Sim.Engine], [Sim.Rng], counters
    and value tables — which every [Mcmp.Runner.run] and
    [Fault.Torture.run] does). Nothing in the simulator libraries keeps
    top-level mutable state, so per-job isolation is per-domain
    isolation.

    Exceptions raised by a job are captured with the job's identity
    attached and re-raised on the calling domain once every worker has
    drained; when several jobs fail, the one with the lowest submission
    index wins, deterministically. *)

type error = {
  index : int;  (** submission index of the failing job *)
  label : string;  (** human identity, e.g. ["TokenCMP-dst1 seed=2"] *)
  exn : exn;  (** the original exception *)
  backtrace : string;
}

exception Job_failed of error

(** [Domain.recommended_domain_count ()]. *)
val available_jobs : unit -> int

(** Parse [TOKENCMP_JOBS] (or [var]); [None] if unset or not a
    positive integer. *)
val jobs_from_env : ?var:string -> unit -> int option

(** Worker-count policy shared by the bench and the CLI:
    [requested >= 1] wins; [requested = 0] means "all cores"
    ({!available_jobs}); otherwise [TOKENCMP_JOBS]; otherwise 1
    (serial, the historical behavior). *)
val resolve_jobs : ?requested:int -> unit -> int

(** [map ~jobs ~label f xs] applies [f] to every element of [xs] and
    returns the results in the order of [xs]. [jobs <= 1] executes
    directly on the calling domain, strictly left to right, spawning
    nothing. [label i x] names job [i] for {!error} attribution. *)
val map : ?jobs:int -> ?label:(int -> 'a -> string) -> ('a -> 'b) -> 'a list -> 'b list
