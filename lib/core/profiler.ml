module J = Json

type class_row = {
  cause : Obs.Event.cause;
  count : int;
  share : float;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p99_clamped : bool;
  class_total_ns : float;
}

type block_row = {
  block_addr : int;
  block_misses : int;
  block_total_ns : float;
  block_retries : int;
  block_persistent : int;
}

type reconciliation = {
  misses : int;
  class_count_total : int;
  class_mass_ns : float;
  histogram_mass_ns : float;
  welford_mass_ns : float;
  spans : int;
  incomplete : int;
  dropped_spans : int;
  buffer_dropped : int;
  classes_exact : bool;
  spans_exact : bool;
}

type t = {
  protocol : string;
  seed : int;
  runtime_ns : float;
  completed : bool;
  ops : int;
  events : int;
  l1_misses : int;
  classes : class_row list;
  hot_blocks : block_row list;
  contended_blocks : block_row list;
  attribution : Obs.Span.attribution;
  tail : (float * Obs.Span.attribution) option;
  span_summary : Obs.Span.summary;
  nsamples : int;
  sample_series : Json.t;
  reconciliation : reconciliation;
  metrics : Json.t;
  perfetto : Json.t;
}

let class_rows counters =
  let total =
    List.fold_left
      (fun acc c -> acc + Mcmp.Counters.cause_count counters c)
      0 Obs.Event.all_causes
  in
  List.map
    (fun cause ->
      let count = Mcmp.Counters.cause_count counters cause in
      let h = Mcmp.Counters.cause_histogram counters cause in
      {
        cause;
        count;
        share = (if total = 0 then 0. else float_of_int count /. float_of_int total);
        mean_ns = Sim.Stat.Histogram.mean h;
        p50_ns = Sim.Stat.Histogram.percentile h 50.;
        p99_ns = Sim.Stat.Histogram.percentile h 99.;
        p99_clamped = Sim.Stat.Histogram.percentile_clamped h 99.;
        class_total_ns = float_of_int (Sim.Stat.Histogram.total h);
      })
    Obs.Event.all_causes

let block_rows ~top_k spans =
  let by_addr = Hashtbl.create 256 in
  List.iter
    (fun (s : Obs.Span.t) ->
      match Obs.Span.total_ns s with
      | None -> ()
      | Some total ->
        let row =
          match Hashtbl.find_opt by_addr s.Obs.Span.addr with
          | Some r -> r
          | None ->
            let r =
              ref
                {
                  block_addr = s.Obs.Span.addr;
                  block_misses = 0;
                  block_total_ns = 0.;
                  block_retries = 0;
                  block_persistent = 0;
                }
            in
            Hashtbl.add by_addr s.Obs.Span.addr r;
            r
        in
        row :=
          {
            !row with
            block_misses = !row.block_misses + 1;
            block_total_ns = !row.block_total_ns +. total;
            block_retries = !row.block_retries + s.Obs.Span.retries;
            block_persistent =
              (!row.block_persistent + if s.Obs.Span.persistent then 1 else 0);
          })
    spans;
  let rows = Hashtbl.fold (fun _ r acc -> !r :: acc) by_addr [] in
  let top cmp =
    let sorted =
      List.sort
        (fun a b ->
          let c = cmp a b in
          if c <> 0 then c else compare a.block_addr b.block_addr)
        rows
    in
    List.filteri (fun i _ -> i < top_k) sorted
  in
  ( top (fun a b -> compare b.block_misses a.block_misses),
    top (fun a b -> compare b.block_total_ns a.block_total_ns) )

let profile ?(config = Mcmp.Config.tiny) ?(capacity = 1_000_000)
    ?(sample_period = Sim.Time.ns 1_000) ?(top_k = 8)
    ~(protocol : Protocols.t) ~programs ~seed () =
  let buffer = Obs.Buffer.create ~capacity () in
  let registry = Obs.Registry.create () in
  let r =
    Mcmp.Runner.run ~config ~registry ~buffer ~sample_period protocol.Protocols.builder
      ~programs ~seed
  in
  let c = r.Mcmp.Runner.counters in
  let spans, dropped_spans = Obs.Span.assemble_full buffer in
  let span_summary = Obs.Span.summarize ~dropped_spans spans in
  let attribution, tail = Obs.Span.attribution spans in
  let hot_blocks, contended_blocks = block_rows ~top_k spans in
  let classes = class_rows c in
  let w = c.Mcmp.Counters.miss_latency in
  let misses = Sim.Stat.Welford.count w in
  let class_count_total = List.fold_left (fun acc row -> acc + row.count) 0 classes in
  let class_mass_ns =
    List.fold_left (fun acc row -> acc +. row.class_total_ns) 0. classes
  in
  let histogram_mass_ns =
    float_of_int (Sim.Stat.Histogram.total c.Mcmp.Counters.miss_histogram)
  in
  let reconciliation =
    {
      misses;
      class_count_total;
      class_mass_ns;
      histogram_mass_ns;
      welford_mass_ns = float_of_int misses *. Sim.Stat.Welford.mean w;
      spans = span_summary.Obs.Span.spans;
      incomplete = span_summary.Obs.Span.incomplete;
      dropped_spans;
      buffer_dropped = Obs.Buffer.dropped buffer;
      classes_exact =
        class_count_total = misses && class_mass_ns = histogram_mass_ns;
      spans_exact =
        span_summary.Obs.Span.spans + dropped_spans = misses
        && Obs.Buffer.dropped buffer = 0;
    }
  in
  let samples =
    match r.Mcmp.Runner.sampler with Some s -> Obs.Sampler.samples s | None -> []
  in
  let perfetto =
    Obs.Perfetto.export ~process_name:protocol.Protocols.name ~samples buffer
  in
  {
    protocol = protocol.Protocols.name;
    seed;
    runtime_ns = Sim.Time.to_ns r.Mcmp.Runner.runtime;
    completed = r.Mcmp.Runner.completed;
    ops = r.Mcmp.Runner.ops;
    events = r.Mcmp.Runner.events;
    l1_misses = c.Mcmp.Counters.l1_misses;
    classes;
    hot_blocks;
    contended_blocks;
    attribution;
    tail;
    span_summary;
    nsamples = List.length samples;
    sample_series =
      (match r.Mcmp.Runner.sampler with
      | Some s -> Obs.Sampler.to_json s
      | None -> J.List []);
    reconciliation;
    metrics = Obs.Registry.snapshot registry;
    perfetto;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let attribution_json (a : Obs.Span.attribution) =
  J.Obj
    [
      ("spans", J.Int a.Obs.Span.att_spans);
      ("mem_ns", J.Float a.Obs.Span.att_mem_ns);
      ("queue_ns", J.Float a.Obs.Span.att_queue_ns);
      ("flight_ns", J.Float a.Obs.Span.att_flight_ns);
      ("proto_ns", J.Float a.Obs.Span.att_proto_ns);
      ("total_ns", J.Float a.Obs.Span.att_total_ns);
    ]

let block_json b =
  J.Obj
    [
      ("addr", J.Int b.block_addr);
      ("misses", J.Int b.block_misses);
      ("total_ns", J.Float b.block_total_ns);
      ("retries", J.Int b.block_retries);
      ("persistent", J.Int b.block_persistent);
    ]

let to_json t =
  J.Obj
    [
      ("protocol", J.String t.protocol);
      ("seed", J.Int t.seed);
      ("runtime_ns", J.Float t.runtime_ns);
      ("completed", J.Bool t.completed);
      ("ops", J.Int t.ops);
      ("events", J.Int t.events);
      ("l1_misses", J.Int t.l1_misses);
      ( "classes",
        J.Obj
          (List.map
             (fun row ->
               ( Obs.Event.cause_to_string row.cause,
                 J.Obj
                   [
                     ("count", J.Int row.count);
                     ("share", J.Float row.share);
                     ("mean_ns", J.Float row.mean_ns);
                     ("p50_ns", J.Int row.p50_ns);
                     ("p99_ns", J.Int row.p99_ns);
                     ("p99_clamped", J.Bool row.p99_clamped);
                     ("total_ns", J.Float row.class_total_ns);
                   ] ))
             t.classes) );
      ("hot_blocks", J.List (List.map block_json t.hot_blocks));
      ("contended_blocks", J.List (List.map block_json t.contended_blocks));
      ("attribution", attribution_json t.attribution);
      ( "p99_tail",
        match t.tail with
        | None -> J.Null
        | Some (threshold, a) ->
          J.Obj [ ("threshold_ns", J.Float threshold); ("attribution", attribution_json a) ]
      );
      ( "spans",
        J.Obj
          [
            ("completed", J.Int t.span_summary.Obs.Span.spans);
            ("incomplete", J.Int t.span_summary.Obs.Span.incomplete);
            ("dropped", J.Int t.span_summary.Obs.Span.dropped_spans);
            ("request_total_ns", J.Float t.span_summary.Obs.Span.request_total_ns);
            ("fill_total_ns", J.Float t.span_summary.Obs.Span.fill_total_ns);
            ("total_ns", J.Float t.span_summary.Obs.Span.total_ns);
          ] );
      ("samples", J.Int t.nsamples);
      ("sample_series", t.sample_series);
      ( "reconciliation",
        let r = t.reconciliation in
        J.Obj
          [
            ("misses", J.Int r.misses);
            ("class_count_total", J.Int r.class_count_total);
            ("class_mass_ns", J.Float r.class_mass_ns);
            ("histogram_mass_ns", J.Float r.histogram_mass_ns);
            ("welford_mass_ns", J.Float r.welford_mass_ns);
            ("spans", J.Int r.spans);
            ("incomplete", J.Int r.incomplete);
            ("dropped_spans", J.Int r.dropped_spans);
            ("buffer_dropped", J.Int r.buffer_dropped);
            ("classes_exact", J.Bool r.classes_exact);
            ("spans_exact", J.Bool r.spans_exact);
          ] );
      ("metrics", t.metrics);
    ]

let pct x = 100. *. x

let to_markdown t =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "# Coherence profile: %s (seed %d)\n\n" t.protocol t.seed;
  p "- runtime: %.1f ns (%s)\n" t.runtime_ns
    (if t.completed then "completed" else "DID NOT COMPLETE");
  p "- ops: %d, engine events: %d, L1 misses: %d\n" t.ops t.events t.l1_misses;
  p "- time-series samples: %d\n\n" t.nsamples;
  p "## Miss classification\n\n";
  p "| class | count | share | mean ns | p50 ns | p99 ns |\n";
  p "|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun row ->
      p "| %s | %d | %.1f%% | %.1f | %d | %d%s |\n"
        (Obs.Event.cause_to_string row.cause)
        row.count (pct row.share) row.mean_ns row.p50_ns row.p99_ns
        (if row.p99_clamped then "+" else ""))
    t.classes;
  p "\n(a trailing `+` marks a clamped percentile: the histogram tail\n";
  p "overflowed, so the value is a lower bound)\n\n";
  p "## Critical-path attribution\n\n";
  p "| window | spans | mem ns | queue ns | flight ns | protocol ns | total ns |\n";
  p "|---|---:|---:|---:|---:|---:|---:|\n";
  let att label (a : Obs.Span.attribution) =
    p "| %s | %d | %.1f | %.1f | %.1f | %.1f | %.1f |\n" label a.Obs.Span.att_spans
      a.Obs.Span.att_mem_ns a.Obs.Span.att_queue_ns a.Obs.Span.att_flight_ns
      a.Obs.Span.att_proto_ns a.Obs.Span.att_total_ns
  in
  att "all misses" t.attribution;
  (match t.tail with
  | Some (threshold, a) -> att (Printf.sprintf "p99 tail (>= %.1f ns)" threshold) a
  | None -> ());
  p "\n";
  let block_table title rows =
    p "## %s\n\n" title;
    p "| block | misses | total ns | retries | persistent |\n";
    p "|---|---:|---:|---:|---:|\n";
    List.iter
      (fun r ->
        p "| 0x%x | %d | %.1f | %d | %d |\n" r.block_addr r.block_misses r.block_total_ns
          r.block_retries r.block_persistent)
      rows;
    p "\n"
  in
  block_table "Hot blocks (by miss count)" t.hot_blocks;
  block_table "Contended blocks (by total latency)" t.contended_blocks;
  let r = t.reconciliation in
  p "## Reconciliation\n\n";
  p "- misses (Welford): %d; class counts sum: %d; spans: %d completed,\n" r.misses
    r.class_count_total r.spans;
  p "  %d incomplete, %d dropped (ring wrap)\n" r.incomplete r.dropped_spans;
  p "- class histogram mass: %.0f ns vs overall histogram %.0f ns (Welford %.1f ns)\n"
    r.class_mass_ns r.histogram_mass_ns r.welford_mass_ns;
  p "- class decomposition exact: %b; span accounting exact: %b\n" r.classes_exact
    r.spans_exact;
  if r.buffer_dropped > 0 then
    p "- WARNING: trace ring dropped %d events; span-level numbers are approximate\n"
      r.buffer_dropped;
  if r.dropped_spans > 0 then
    p "- WARNING: %d retires had no matching issue; their latency is in the\n\
      \  Welford but in no span\n"
      r.dropped_spans;
  Buffer.contents b
