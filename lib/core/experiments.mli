(** Experiment harness for the paper's evaluation (Sections 5, 7, 8).

    Each function reproduces the measurement behind one table or
    figure; the bench executable formats the results, and EXPERIMENTS.md
    records paper-vs-measured. Runs are repeated over [seeds] with
    randomly perturbed message latencies and reported as mean ± 95% CI
    (Alameldeen & Wood's methodology).

    Every harness takes [?jobs]: the independent (protocol, seed)
    simulations fan out over a {!Par.Pool} of that many domains.
    Results are regrouped in submission order and each simulation owns
    its engine/rng/counters, so any [jobs] value produces output
    bit-identical to the serial run (enforced by [test/test_par.ml]). *)

type run = {
  protocol : string;
  runtime_ns : Sim.Stat.Summary.t;  (** measured (post-warmup) runtime *)
  persistent_fraction : float;  (** persistent requests / L1 misses *)
  retries_per_miss : float;
  miss_latency_ns : float;
  inter_bytes : (Interconnect.Msg_class.t * float) list;  (** mean per seed *)
  intra_bytes : (Interconnect.Msg_class.t * float) list;
  completed : bool;  (** every seed ran to completion *)
  metrics : Json.t;
      (** registry snapshot of counters/traffic merged across seeds *)
}

val default_seeds : int list

(** The locking micro-benchmark at one contention level. *)
val locking :
  ?jobs:int ->
  ?config:Mcmp.Config.t ->
  ?seeds:int list ->
  ?acquires:int ->
  ?lock_stride:int ->
  protocols:Protocols.t list ->
  nlocks:int ->
  unit ->
  run list

(** Figures 2 and 3: sweep lock counts (2..512 by default). The whole
    (locks x protocols x seeds) cross product is one job pool. *)
val locking_sweep :
  ?jobs:int ->
  ?config:Mcmp.Config.t ->
  ?seeds:int list ->
  ?acquires:int ->
  ?locks:int list ->
  protocols:Protocols.t list ->
  unit ->
  (int * run list) list

(** Table 4: the barrier micro-benchmark.
    [variability] is the half-width of the uniform work perturbation
    (0 or 1000 ns in the paper). *)
val barrier :
  ?jobs:int ->
  ?config:Mcmp.Config.t ->
  ?seeds:int list ->
  ?episodes:int ->
  variability:Sim.Time.t ->
  protocols:Protocols.t list ->
  unit ->
  run list

(** Figures 6 and 7: a commercial-workload stand-in. *)
val commercial :
  ?jobs:int ->
  ?config:Mcmp.Config.t ->
  ?seeds:int list ->
  ?ops:int ->
  profile:Workload.Commercial.profile ->
  protocols:Protocols.t list ->
  unit ->
  run list

(** Section 5: model-check every substrate variant and the flat
    directory; returns (model name, exploration stats, model source
    lines). [store], [jobs] and [sym] select the visited-set
    representation, parallel frontier width and symmetry reduction (see
    {!Mc.Explore.Make.run}); defaults preserve the historical exact
    serial semantics. *)
val model_checking :
  ?max_states:int ->
  ?store:Mc.Explore.store ->
  ?jobs:int ->
  ?sym:bool ->
  unit ->
  (string * Mc.Explore.stats * int) list

(** The Table 4 checkability comparison (token substrate vs flat
    directory) at the paper's 2-cache configuration and one size above
    it (3 caches); returns (model name, caches, stats, model source
    lines). Defaults to the compacted store and a 200M-state budget:
    the 3-cache token graph closes at 10.6M states; the 3-cache
    directory graph exceeds the budget (that truncated row is the
    result — it quantifies the paper's checkability gap). *)
val table4 :
  ?max_states:int ->
  ?store:Mc.Explore.store ->
  ?jobs:int ->
  ?sym:bool ->
  unit ->
  (string * int * Mc.Explore.stats * int) list

(* Protocol sets used by each figure, in the paper's order. *)
val fig2_protocols : Protocols.t list
val fig3_protocols : Protocols.t list
val tab4_protocols : Protocols.t list
val fig6_protocols : Protocols.t list

(** Normalized runtime helper: [runtime p / runtime baseline]. *)
val normalize : baseline:run -> run -> float

val find : run list -> string -> run

(** Serialization for the committed [BENCH_<section>.json] trajectory
    files (schema documented in README "Machine-readable bench output"). *)
val run_to_json : run -> Json.t
