(** Minimal JSON emitter for the committed [BENCH_<section>.json]
    trajectory files (no external JSON dependency in the toolchain).
    Output is two-space indented so cross-PR diffs stay line-oriented;
    non-finite floats render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit
