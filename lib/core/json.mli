(** JSON emission for the committed [BENCH_<section>.json] trajectory
    files. The implementation lives in {!Tcjson} (bottom of the library
    stack, shared with the observability layer); this module re-exports
    it under the public facade. *)

type t = Tcjson.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit

val float_repr : float -> string

val parse : string -> (t, string) result

val member : string -> t -> t option

val to_list_opt : t -> t list option

val equal : t -> t -> bool
