type run = {
  protocol : string;
  runtime_ns : Sim.Stat.Summary.t;
  persistent_fraction : float;
  retries_per_miss : float;
  miss_latency_ns : float;
  inter_bytes : (Interconnect.Msg_class.t * float) list;
  intra_bytes : (Interconnect.Msg_class.t * float) list;
  completed : bool;
  metrics : Json.t;
}

let default_seeds = [ 1; 2; 3 ]

let mean_breakdown per_seed =
  let n = float_of_int (List.length per_seed) in
  List.map
    (fun cls ->
      let total =
        List.fold_left
          (fun acc breakdown -> acc + List.assoc cls breakdown)
          0 per_seed
      in
      (cls, float_of_int total /. n))
    Interconnect.Msg_class.all

(* Merge every seed's counters and traffic into fresh accumulators and
   snapshot them through a registry: the same rendering path the live
   (per-engine) registries use, so BENCH metrics and torture evidence
   share one schema. *)
let merged_metrics results =
  let counters = Mcmp.Counters.create () in
  let traffic = Interconnect.Traffic.create () in
  List.iter
    (fun r ->
      Mcmp.Counters.merge ~into:counters r.Mcmp.Runner.counters;
      Interconnect.Traffic.merge ~into:traffic r.Mcmp.Runner.traffic)
    results;
  let registry = Obs.Registry.create () in
  Mcmp.Counters.register registry counters;
  Interconnect.Traffic.register registry traffic;
  Obs.Registry.snapshot registry

let summarize protocol results =
  let runtimes = List.map (fun r -> Sim.Time.to_ns r.Mcmp.Runner.runtime) results in
  let n = float_of_int (List.length results) in
  let favg f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
  {
    protocol;
    runtime_ns = Sim.Stat.Summary.of_list runtimes;
    persistent_fraction =
      favg (fun r -> Mcmp.Counters.persistent_fraction r.Mcmp.Runner.counters);
    retries_per_miss =
      favg (fun r ->
          let c = r.Mcmp.Runner.counters in
          if c.Mcmp.Counters.l1_misses = 0 then 0.
          else
            float_of_int c.Mcmp.Counters.transient_retries
            /. float_of_int c.Mcmp.Counters.l1_misses);
    miss_latency_ns =
      favg (fun r -> Sim.Stat.Welford.mean r.Mcmp.Runner.counters.Mcmp.Counters.miss_latency);
    inter_bytes =
      mean_breakdown
        (List.map (fun r -> Interconnect.Traffic.inter_breakdown r.Mcmp.Runner.traffic) results);
    intra_bytes =
      mean_breakdown
        (List.map (fun r -> Interconnect.Traffic.intra_breakdown r.Mcmp.Runner.traffic) results);
    completed = List.for_all (fun r -> r.Mcmp.Runner.completed) results;
    metrics = merged_metrics results;
  }

(* [chunks n xs] splits [xs] into consecutive groups of [n],
   preserving order: how flattened parallel job results are regrouped
   into the per-protocol (and per-lock-count) lists the serial code
   produced. *)
let rec chunks n = function
  | [] -> []
  | xs ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let group, rest = take n [] xs in
    group :: chunks n rest

(* Every (protocol, seed) simulation is independent: fan them out over
   the pool, then regroup in submission order so the result is
   structurally identical to the serial nested loops. *)
let run_protocols ~jobs ~config ~seeds ~protocols ~programs =
  let tasks =
    List.concat_map (fun p -> List.map (fun seed -> (p, seed)) seeds) protocols
  in
  let results =
    Par.Pool.map ~jobs
      ~label:(fun _ (p, seed) -> Printf.sprintf "%s seed=%d" p.Protocols.name seed)
      (fun (p, seed) ->
        Mcmp.Runner.run ~config p.Protocols.builder ~programs:(programs ~seed) ~seed)
      tasks
  in
  List.map2
    (fun p rs -> summarize p.Protocols.name rs)
    protocols
    (chunks (List.length seeds) results)

let locking_workload ~nlocks ~acquires ~lock_stride =
  { (Workload.Locking.default ~nlocks) with Workload.Locking.acquires; lock_stride }

let locking ?(jobs = 1) ?(config = Mcmp.Config.default) ?(seeds = default_seeds)
    ?(acquires = 60) ?(lock_stride = 1) ~protocols ~nlocks () =
  let wl = locking_workload ~nlocks ~acquires ~lock_stride in
  let nprocs = Mcmp.Config.nprocs config in
  let programs ~seed = Workload.Locking.programs wl ~seed ~nprocs in
  run_protocols ~jobs ~config ~seeds ~protocols ~programs

let locking_sweep ?(jobs = 1) ?(config = Mcmp.Config.default) ?(seeds = default_seeds)
    ?(acquires = 60) ?(locks = [ 2; 4; 8; 16; 32; 64; 128; 256; 512 ]) ~protocols () =
  (* Flatten the full (nlocks x protocol x seed) cross product so one
     pool keeps every worker busy across the whole sweep. *)
  let nprocs = Mcmp.Config.nprocs config in
  let tasks =
    List.concat_map
      (fun nlocks ->
        List.concat_map
          (fun p -> List.map (fun seed -> (nlocks, p, seed)) seeds)
          protocols)
      locks
  in
  let results =
    Par.Pool.map ~jobs
      ~label:(fun _ (nlocks, p, seed) ->
        Printf.sprintf "locking nlocks=%d %s seed=%d" nlocks p.Protocols.name seed)
      (fun (nlocks, p, seed) ->
        let wl = locking_workload ~nlocks ~acquires ~lock_stride:1 in
        Mcmp.Runner.run ~config p.Protocols.builder
          ~programs:(Workload.Locking.programs wl ~seed ~nprocs)
          ~seed)
      tasks
  in
  let nseeds = List.length seeds in
  List.map2
    (fun nlocks per_lock ->
      ( nlocks,
        List.map2
          (fun p rs -> summarize p.Protocols.name rs)
          protocols (chunks nseeds per_lock) ))
    locks
    (chunks (nseeds * List.length protocols) results)

let barrier ?(jobs = 1) ?(config = Mcmp.Config.default) ?(seeds = default_seeds)
    ?(episodes = 30) ~variability ~protocols () =
  let nprocs = Mcmp.Config.nprocs config in
  let wl =
    { (Workload.Barrier.default ~nprocs) with
      Workload.Barrier.episodes;
      work_variability = variability }
  in
  let programs ~seed ~proc = Workload.Barrier.program wl ~seed ~proc in
  run_protocols ~jobs ~config ~seeds ~protocols ~programs:(fun ~seed -> programs ~seed)

let commercial ?(jobs = 1) ?(config = Mcmp.Config.default) ?(seeds = default_seeds) ?ops
    ~profile ~protocols () =
  let profile =
    match ops with Some ops -> { profile with Workload.Commercial.ops } | None -> profile
  in
  let programs ~seed ~proc = Workload.Commercial.program profile ~seed ~proc in
  run_protocols ~jobs ~config ~seeds ~protocols ~programs:(fun ~seed -> programs ~seed)

let model_checking ?(max_states = 4_000_000) ?(store = Mc.Explore.Exact) ?(jobs = 1)
    ?(sym = true) () =
  let check name m loc =
    let module M = (val m : Mc.Explore.MODEL) in
    let module R = Mc.Explore.Make (M) in
    (name, R.run ~max_states ~store ~jobs ~sym (), loc)
  in
  let tp = Mc.Token_model.default_params in
  let dp = Mc.Dir_model.default_params in
  let dp3 = { dp with Mc.Dir_model.caches = 3 } in
  let rp = Mc.Recovery_model.default_params in
  let token_loc = Mc.Dir_model.model_loc `Token in
  let dir_loc = Mc.Dir_model.model_loc `Directory in
  let rec_loc = Mc.Dir_model.model_loc `Recovery in
  [
    check "TokenCMP-safety" (Mc.Token_model.safety tp) token_loc;
    check "TokenCMP-dst" (Mc.Token_model.distributed tp) token_loc;
    check "TokenCMP-arb" (Mc.Token_model.arbiter tp) token_loc;
    check "TokenCMP-recovery" (Mc.Recovery_model.model rp) rec_loc;
    check "Flat Directory (2c)" (Mc.Dir_model.flat dp) dir_loc;
    (* one more cache makes the directory's coupled transient states
       blow past the state budget -- the scaling wall of Section 5 *)
    check "Flat Directory (3c)" (Mc.Dir_model.flat dp3) dir_loc;
  ]

(* The paper's Table 4 comparison — model size and checkability of the
   token substrate vs the flat directory — re-run at the paper's
   configuration (2 caches) and one size above it (3 caches, one more
   token). The 3-cache graphs are orders of magnitude bigger; the
   compacted store is the default here so they close in memory. *)
let table4 ?(max_states = 200_000_000) ?(store = Mc.Explore.Compact) ?(jobs = 1) ?(sym = true)
    () =
  let check name caches m loc =
    let module M = (val m : Mc.Explore.MODEL) in
    let module R = Mc.Explore.Make (M) in
    (name, caches, R.run ~max_states ~store ~jobs ~sym (), loc)
  in
  let tp = Mc.Token_model.default_params in
  let tp3 = { tp with Mc.Token_model.caches = 3; tokens = 4 } in
  (* both directory rows run at net_cap 3: the 2-cache directory graph
     is invariant for any cap >= 3 (attained concurrency is 3), and
     pinning the cap is the directory's best shot at closing the
     3-cache graph *)
  let dp = { Mc.Dir_model.default_params with Mc.Dir_model.net_cap = 3 } in
  let dp3 = { dp with Mc.Dir_model.caches = 3 } in
  let token_loc = Mc.Dir_model.model_loc `Token in
  let dir_loc = Mc.Dir_model.model_loc `Directory in
  [
    check "TokenCMP-dst (2c)" 2 (Mc.Token_model.distributed tp) token_loc;
    check "TokenCMP-dst (3c)" 3 (Mc.Token_model.distributed tp3) token_loc;
    check "Flat Directory (2c)" 2 (Mc.Dir_model.flat dp) dir_loc;
    check "Flat Directory (3c)" 3 (Mc.Dir_model.flat dp3) dir_loc;
  ]

let fig2_protocols =
  [
    Protocols.token Token.Policy.arb0;
    Protocols.directory;
    Protocols.directory_zero;
    Protocols.token Token.Policy.dst0;
  ]

let fig3_protocols =
  [
    Protocols.directory;
    Protocols.directory_zero;
    Protocols.token Token.Policy.dst4;
    Protocols.token Token.Policy.dst1;
    Protocols.token Token.Policy.dst1_pred;
  ]

let tab4_protocols =
  [
    Protocols.token Token.Policy.arb0;
    Protocols.token Token.Policy.dst0;
    Protocols.directory;
    Protocols.directory_zero;
    Protocols.token Token.Policy.dst4;
    Protocols.token Token.Policy.dst1;
    Protocols.token Token.Policy.dst1_pred;
    Protocols.token Token.Policy.dst1_filt;
  ]

let fig6_protocols = Protocols.macro

let find runs name =
  match List.find_opt (fun r -> r.protocol = name) runs with
  | Some r -> r
  | None -> invalid_arg ("Experiments.find: no run for " ^ name)

let normalize ~baseline run = run.runtime_ns.Sim.Stat.Summary.mean /. baseline.runtime_ns.Sim.Stat.Summary.mean

let breakdown_to_json breakdown =
  Json.Obj
    (List.map
       (fun (cls, bytes) -> (Interconnect.Msg_class.to_string cls, Json.Float bytes))
       breakdown)

let run_to_json r =
  let s = r.runtime_ns in
  Json.Obj
    [
      ("protocol", Json.String r.protocol);
      ( "runtime_ns",
        Json.Obj
          [
            ("mean", Json.Float s.Sim.Stat.Summary.mean);
            ("ci95", Json.Float s.Sim.Stat.Summary.ci95);
            ("stddev", Json.Float s.Sim.Stat.Summary.stddev);
            ("n", Json.Int s.Sim.Stat.Summary.n);
          ] );
      ("persistent_fraction", Json.Float r.persistent_fraction);
      ("retries_per_miss", Json.Float r.retries_per_miss);
      ("miss_latency_ns", Json.Float r.miss_latency_ns);
      ("inter_bytes", breakdown_to_json r.inter_bytes);
      ("intra_bytes", breakdown_to_json r.intra_bytes);
      ("completed", Json.Bool r.completed);
      ("metrics", r.metrics);
    ]
