include Tcjson
