(** Coherence profiler: one instrumented run (trace buffer + metrics
    registry + periodic sampler) distilled into a miss-classification,
    hop-attribution and hot-block report.

    The per-class decomposition comes from {!Mcmp.Counters.record_miss}
    (the single funnel every protocol feeds), so class counts sum to
    the miss total and class histogram mass equals the overall
    histogram mass {e exactly}. Span-level numbers come from the trace
    buffer and reconcile exactly when the ring did not wrap; the
    [reconciliation] block says which guarantee held. *)

type class_row = {
  cause : Obs.Event.cause;
  count : int;
  share : float;  (** of all classified misses; 0 when there are none *)
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p99_clamped : bool;  (** histogram tail clamped: p99 is a lower bound *)
  class_total_ns : float;  (** histogram mass (ns, integer-truncated) *)
}

type block_row = {
  block_addr : int;
  block_misses : int;  (** completed spans touching the block *)
  block_total_ns : float;  (** summed span latency *)
  block_retries : int;
  block_persistent : int;  (** spans that escalated to a persistent request *)
}

type reconciliation = {
  misses : int;  (** Welford sample count (retired misses) *)
  class_count_total : int;  (** sum of per-class counts *)
  class_mass_ns : float;  (** sum of per-class histogram totals *)
  histogram_mass_ns : float;  (** overall miss histogram total *)
  welford_mass_ns : float;  (** count x mean, float-accurate *)
  spans : int;
  incomplete : int;
  dropped_spans : int;  (** retires whose issue was lost (ring wrap) *)
  buffer_dropped : int;  (** raw events lost to ring wrap *)
  classes_exact : bool;  (** class counts and mass reconcile exactly *)
  spans_exact : bool;  (** spans + dropped = misses, nothing lost *)
}

type t = {
  protocol : string;
  seed : int;
  runtime_ns : float;
  completed : bool;
  ops : int;
  events : int;
  l1_misses : int;
  classes : class_row list;  (** in {!Obs.Event.all_causes} order *)
  hot_blocks : block_row list;  (** top-K by miss count *)
  contended_blocks : block_row list;  (** top-K by total latency *)
  attribution : Obs.Span.attribution;  (** over all completed spans *)
  tail : (float * Obs.Span.attribution) option;
      (** p99 threshold (ns) and the attribution of spans at or above it *)
  span_summary : Obs.Span.summary;
  nsamples : int;  (** time-series samples recorded *)
  sample_series : Json.t;  (** {!Obs.Sampler.to_json} *)
  reconciliation : reconciliation;
  metrics : Json.t;  (** registry snapshot at end of run *)
  perfetto : Json.t;  (** trace with span slices and counter tracks *)
}

(** Run [protocol] once under full instrumentation and build the
    report. [capacity] sizes the trace ring (default one million
    events — enough that tiny-config runs never wrap), [sample_period]
    the counter-track cadence (default 1 us of simulated time), [top_k]
    the hot/contended block table depth (default 8). *)
val profile :
  ?config:Mcmp.Config.t ->
  ?capacity:int ->
  ?sample_period:Sim.Time.t ->
  ?top_k:int ->
  protocol:Protocols.t ->
  programs:(proc:int -> Workload.Program.t) ->
  seed:int ->
  unit ->
  t

(** Deterministic JSON of everything except [perfetto] (written
    separately — it dwarfs the report). *)
val to_json : t -> Json.t

val to_markdown : t -> string
